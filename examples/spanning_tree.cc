// Example 3 from the paper (§II-B / §VI): building a shortest-path tree
// with an XY-stratified deductive program, and comparing its communication
// cost against a hand-written procedural protocol (the Kairos comparison).
//
// The logicJ program (the improved variant referenced in §VI) stores j(Y, D)
// at node Y itself (`home y storage local`), so the compiled plan routes
// partial results between neighbor homes instead of sweeping columns — the
// spatial-constraint optimization of §III-A.
//
// Build & run:  ./examples/spanning_tree

#include <cstdio>
#include <map>

#include "deduce/baselines/procedural_spt.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

using namespace deduce;

namespace {

constexpr char kLogicJ[] = R"(
  .decl g/2 input storage spatial 1.
  .decl j(y, d) home y stage d storage local.
  .decl j1(y, d) home y stage d storage local.
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

}  // namespace

int main() {
  const int m = 6;
  Topology topology = Topology::Grid(m);

  // --- deductive version ---
  StatusOr<Program> program = ParseProgram(kLogicJ);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }
  Network net(topology, LinkModel{}, /*seed=*/6);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  if (!engine.ok()) {
    std::fprintf(stderr, "compile: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled plan (note the local-route strategies):\n%s\n",
              (*engine)->plan().ToString().c_str());

  // Each node announces its adjacency into the g stream — in a deployment
  // this is the neighbor-discovery beacon.
  SimTime at = 50'000;
  for (int v = 0; v < topology.node_count(); ++v) {
    for (NodeId u : topology.neighbors(v)) {
      net.sim().RunUntil(at);
      (void)(*engine)->Inject(
          v, StreamOp::kInsert,
          Fact(Intern("g"), {Term::Int(v), Term::Int(u)}));
      at += 10'000;
    }
  }
  net.sim().Run();

  std::map<int, int> depth;
  for (const Fact& f : (*engine)->ResultFacts(Intern("j"))) {
    depth[static_cast<int>(f.args()[0].value().as_int())] =
        static_cast<int>(f.args()[1].value().as_int());
  }
  std::printf("shortest-path tree depths (logicJ), %d x %d grid:\n", m, m);
  for (int q = 0; q < m; ++q) {
    std::printf("  ");
    for (int p = 0; p < m; ++p) {
      std::printf("%2d ", depth[topology.GridNode(p, q)]);
    }
    std::printf("\n");
  }
  uint64_t logicj_msgs = net.stats().TotalMessages();
  uint64_t logicj_bytes = net.stats().TotalBytes();

  // --- procedural baseline ---
  Network net2(topology, LinkModel{}, /*seed=*/6);
  ProceduralSptResult proc = RunProceduralSpt(&net2, /*root=*/0);
  bool same = true;
  for (int v = 0; v < topology.node_count(); ++v) {
    if (proc.distance[static_cast<size_t>(v)] != depth[v]) same = false;
  }

  std::printf("\n%-28s %12s %12s\n", "", "messages", "bytes");
  std::printf("%-28s %12llu %12llu\n", "compiled deductive (logicJ)",
              static_cast<unsigned long long>(logicj_msgs),
              static_cast<unsigned long long>(logicj_bytes));
  std::printf("%-28s %12llu %12llu\n", "hand-written procedural",
              static_cast<unsigned long long>(proc.total_messages),
              static_cast<unsigned long long>(proc.total_bytes));
  std::printf("trees agree: %s\n", same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
