// Example 1 from the paper (§II-B): battlefield vehicle tracking with
// negation. A sensor field detects enemy and friendly vehicles; an alert
// fires for every *uncovered* enemy vehicle — an enemy with no friendly
// vehicle within distance 5. As friendlies move, coverage changes and the
// alerts are retracted / re-derived incrementally (§IV: deletions and
// negated subgoals).
//
// Build & run:  ./examples/vehicle_tracking

#include <cstdio>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

using namespace deduce;

namespace {

Fact Detection(const char* stream, double x, double y, int t, NodeId node) {
  return Fact(Intern(stream),
              {Term::Function("loc", {Term::Real(x), Term::Real(y)}),
               Term::Int(t), Term::Int(node)});
}

void PrintAlerts(DistributedEngine* engine, const char* when) {
  std::printf("%s\n", when);
  std::vector<Fact> alerts = engine->ResultFacts(Intern("uncov"));
  if (alerts.empty()) std::printf("  (no uncovered enemies)\n");
  for (const Fact& f : alerts) std::printf("  ALERT %s\n", f.ToString().c_str());
}

}  // namespace

int main() {
  // The program is the paper's Example 1 verbatim (modulo syntax): cov
  // derives covered enemy locations via a spatial join; uncov subtracts
  // them from the enemy detections with NOT.
  const char* program_text = R"(
    .decl veh_enemy(l, t, n) input.
    .decl veh_friendly(l, t, n) input.
    cov(L1, T) :- veh_enemy(L1, T, N1), veh_friendly(L2, T, N2),
                  dist(L1, L2) <= 5.0.
    uncov(L, T) :- veh_enemy(L, T, N), NOT cov(L, T).
  )";

  StatusOr<Program> program = ParseProgram(program_text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }

  Network network(Topology::Grid(8), LinkModel{}, /*seed=*/42);
  auto engine = DistributedEngine::Create(&network, *program, EngineOptions{});
  if (!engine.ok()) {
    std::fprintf(stderr, "compile: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // t=1: two enemies detected; one friendly near the first enemy.
  network.sim().RunUntil(100'000);
  Fact enemy_a = Detection("veh_enemy", 1, 1, 1, 9);
  Fact enemy_b = Detection("veh_enemy", 6, 6, 1, 54);
  Fact friendly = Detection("veh_friendly", 2, 2, 1, 18);
  (void)(*engine)->Inject(9, StreamOp::kInsert, enemy_a);
  network.sim().RunUntil(200'000);
  (void)(*engine)->Inject(54, StreamOp::kInsert, enemy_b);
  network.sim().RunUntil(300'000);
  (void)(*engine)->Inject(18, StreamOp::kInsert, friendly);
  network.sim().Run();
  PrintAlerts(engine->get(),
              "after detections (friendly at (2,2) covers enemy at (1,1)):");

  // The friendly withdraws: its detection is deleted; the first enemy
  // becomes uncovered. NOT-subgoal deletion re-derives the alert (§IV-B).
  network.sim().RunUntil(network.sim().now() + 100'000);
  (void)(*engine)->Inject(18, StreamOp::kDelete, friendly);
  network.sim().Run();
  PrintAlerts(engine->get(), "after the friendly withdraws:");

  // A new friendly arrives near the second enemy.
  network.sim().RunUntil(network.sim().now() + 100'000);
  (void)(*engine)->Inject(45, StreamOp::kInsert,
                          Detection("veh_friendly", 5, 5, 1, 45));
  network.sim().Run();
  PrintAlerts(engine->get(), "after a friendly reaches (5,5):");

  std::printf(
      "\nnetwork cost so far: %llu messages, %llu bytes\n"
      "derivations added=%llu removed=%llu\n",
      static_cast<unsigned long long>(network.stats().TotalMessages()),
      static_cast<unsigned long long>(network.stats().TotalBytes()),
      static_cast<unsigned long long>((*engine)->stats().derivations_added),
      static_cast<unsigned long long>((*engine)->stats().derivations_removed));
  return 0;
}
