// Perimeter (contour) detection — a classic collaborative sensor-network
// task that needs exactly the paper's machinery: a spatial join against
// neighbors plus negation.
//
// Nodes detect a phenomenon (e.g. a gas plume). A detecting node is *interior*
// if every neighbor also detects; the perimeter is the set of detecting nodes
// that are not interior. Spatial storage keeps all communication within one
// hop; the compiled plan never sweeps the network.
//
// Build & run:  ./examples/perimeter

#include <cmath>
#include <cstdio>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

using namespace deduce;

int main() {
  const char* program_text = R"(
    % detect(n): node n senses the phenomenon. nbr(a, b): adjacency beacons.
    % Both replicated one hop out; derived predicates are homed at the node
    % they describe, so every rule evaluates within the neighborhood.
    .decl detect(n) input storage spatial 1.
    .decl nbr(a, b) input storage spatial 1.
    .decl silentnbr(a) home a storage local.
    .decl perimeter(a) home a storage local.

    % A detecting node with a silent neighbor is on the perimeter.
    silentnbr(A) :- nbr(A, B), detect(A), NOT detect(B).
    perimeter(A) :- detect(A), silentnbr(A).
  )";

  StatusOr<Program> program = ParseProgram(program_text);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }

  const int m = 9;
  Topology topo = Topology::Grid(m);
  Network net(topo, LinkModel{}, /*seed=*/11);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  if (!engine.ok()) {
    std::fprintf(stderr, "compile: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A circular plume centered mid-field.
  auto detects = [&](NodeId v) {
    const Location& l = topo.location(v);
    return std::hypot(l.x - 4.0, l.y - 4.0) <= 2.6;
  };

  SimTime t = 10'000;
  for (int v = 0; v < topo.node_count(); ++v) {
    for (NodeId u : topo.neighbors(v)) {
      net.sim().RunUntil(t);
      (void)(*engine)->Inject(v, StreamOp::kInsert,
                              Fact(Intern("nbr"), {Term::Int(v), Term::Int(u)}));
      t += 2'000;
    }
    if (detects(v)) {
      net.sim().RunUntil(t);
      (void)(*engine)->Inject(v, StreamOp::kInsert,
                              Fact(Intern("detect"), {Term::Int(v)}));
      t += 2'000;
    }
  }
  net.sim().Run();

  std::set<int> perimeter;
  for (const Fact& f : (*engine)->ResultFacts(Intern("perimeter"))) {
    perimeter.insert(static_cast<int>(f.args()[0].value().as_int()));
  }
  std::printf("plume map ('.' quiet, 'o' interior, 'X' perimeter):\n");
  for (int q = 0; q < m; ++q) {
    std::printf("  ");
    for (int p = 0; p < m; ++p) {
      NodeId v = topo.GridNode(p, q);
      char c = '.';
      if (perimeter.count(v)) {
        c = 'X';
      } else if (detects(v)) {
        c = 'o';
      }
      std::printf("%c ", c);
    }
    std::printf("\n");
  }
  std::printf("\nperimeter nodes: %zu; network cost: %llu messages, %llu "
              "bytes (all within one hop of the plume)\n",
              perimeter.size(),
              static_cast<unsigned long long>(net.stats().TotalMessages()),
              static_cast<unsigned long long>(net.stats().TotalBytes()));

  // Self-check (the ctest smoke test relies on the exit code): the derived
  // perimeter must be exactly the detecting nodes with a quiet neighbor.
  for (int v = 0; v < topo.node_count(); ++v) {
    bool boundary = false;
    if (detects(v)) {
      for (NodeId u : topo.neighbors(v)) {
        if (!detects(u)) boundary = true;
      }
    }
    if (boundary != (perimeter.count(v) > 0)) {
      std::fprintf(stderr, "MISMATCH at node %d\n", v);
      return 1;
    }
  }
  return 0;
}
