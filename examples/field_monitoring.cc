// In-network aggregation (§IV-C): the paper delegates aggregate evaluation
// to specialized distributed techniques such as TAG. This example monitors
// a temperature field: every epoch the network computes the maximum and
// average temperature at the root with one message per node per epoch, and
// a deductive rule at the root classifies the situation.
//
// Build & run:  ./examples/field_monitoring

#include <cmath>
#include <cstdio>

#include "deduce/datalog/parser.h"
#include "deduce/engine/aggregation.h"
#include "deduce/eval/seminaive.h"

using namespace deduce;

int main() {
  Topology topology = Topology::Grid(8);

  // A heat source moves across the field over epochs; readings are a
  // function of distance to it.
  auto temperature = [&](NodeId id, int epoch) -> std::optional<double> {
    Location hot{1.0 + 1.5 * epoch, 3.5};
    double d = topology.location(id).DistanceTo(hot);
    return 20.0 + 60.0 * std::exp(-d * d / 4.0);
  };

  std::printf("epoch  max(C)  avg(C)  msgs/epoch  classification\n");
  for (AggKind kind : {AggKind::kMax}) {
    (void)kind;
  }
  const int epochs = 4;
  // Run max and avg aggregation over the same readings (two TAG trees in a
  // deployment; two runs here to keep the per-epoch message count visible).
  std::vector<TagAggregation::EpochResult> maxes, avgs;
  uint64_t msgs_per_epoch = 0;
  {
    Network net(topology, LinkModel{}, 99);
    TagAggregation::Options options;
    options.kind = AggKind::kMax;
    options.epochs = epochs;
    maxes = TagAggregation::Run(&net, options, temperature);
    msgs_per_epoch = net.stats().TotalMessages() / epochs;
  }
  {
    Network net(topology, LinkModel{}, 99);
    TagAggregation::Options options;
    options.kind = AggKind::kAvg;
    options.epochs = epochs;
    avgs = TagAggregation::Run(&net, options, temperature);
  }

  // The root feeds epoch aggregates into a tiny deductive program for
  // classification — local reasoning over collaboratively-computed facts.
  const char* classifier = R"(
    .decl stat(epoch, maxc, avgc) input.
    alarm(E) :- stat(E, M, A), M > 70.0.
    watch(E) :- stat(E, M, A), M > 55.0, NOT alarm(E).
    calm(E)  :- stat(E, M, A), NOT alarm(E), NOT watch(E).
  )";
  Program prog = ParseProgram(classifier).value();
  std::vector<Fact> stats;
  for (int e = 0; e < epochs; ++e) {
    stats.push_back(Fact(Intern("stat"),
                         {Term::Int(e), Term::Real(maxes[static_cast<size_t>(e)].value),
                          Term::Real(avgs[static_cast<size_t>(e)].value)}));
  }
  Database db = EvaluateProgram(prog, stats).value();

  for (int e = 0; e < epochs; ++e) {
    const char* klass = "calm";
    if (db.Contains(Fact(Intern("alarm"), {Term::Int(e)}))) klass = "ALARM";
    else if (db.Contains(Fact(Intern("watch"), {Term::Int(e)}))) klass = "watch";
    std::printf("%5d  %6.1f  %6.1f  %10llu  %s\n", e,
                maxes[static_cast<size_t>(e)].value,
                avgs[static_cast<size_t>(e)].value,
                static_cast<unsigned long long>(msgs_per_epoch), klass);
  }
  return 0;
}
