file(REMOVE_RECURSE
  "CMakeFiles/dlog.dir/dlog.cc.o"
  "CMakeFiles/dlog.dir/dlog.cc.o.d"
  "dlog"
  "dlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
