# Empty dependencies file for dlog.
# This may be replaced when dependencies are built.
