# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dlog_check "/root/repo/build/tools/dlog" "check" "/root/repo/examples/programs/spt.dlog")
set_tests_properties(dlog_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dlog_eval "/root/repo/build/tools/dlog" "eval" "/root/repo/examples/programs/ancestor.dlog")
set_tests_properties(dlog_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dlog_simulate "/root/repo/build/tools/dlog" "simulate" "/root/repo/examples/programs/uncovered.dlog" "--events" "/root/repo/examples/programs/uncovered.events" "--grid" "8")
set_tests_properties(dlog_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
