file(REMOVE_RECURSE
  "libdeduce_routing.a"
)
