# Empty compiler generated dependencies file for deduce_routing.
# This may be replaced when dependencies are built.
