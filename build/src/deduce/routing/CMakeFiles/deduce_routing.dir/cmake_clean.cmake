file(REMOVE_RECURSE
  "CMakeFiles/deduce_routing.dir/geo_hash.cc.o"
  "CMakeFiles/deduce_routing.dir/geo_hash.cc.o.d"
  "CMakeFiles/deduce_routing.dir/routing.cc.o"
  "CMakeFiles/deduce_routing.dir/routing.cc.o.d"
  "libdeduce_routing.a"
  "libdeduce_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
