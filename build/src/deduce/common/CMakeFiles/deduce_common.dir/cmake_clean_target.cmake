file(REMOVE_RECURSE
  "libdeduce_common.a"
)
