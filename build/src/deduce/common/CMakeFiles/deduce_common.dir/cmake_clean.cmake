file(REMOVE_RECURSE
  "CMakeFiles/deduce_common.dir/logging.cc.o"
  "CMakeFiles/deduce_common.dir/logging.cc.o.d"
  "CMakeFiles/deduce_common.dir/status.cc.o"
  "CMakeFiles/deduce_common.dir/status.cc.o.d"
  "CMakeFiles/deduce_common.dir/strings.cc.o"
  "CMakeFiles/deduce_common.dir/strings.cc.o.d"
  "libdeduce_common.a"
  "libdeduce_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
