# Empty compiler generated dependencies file for deduce_common.
# This may be replaced when dependencies are built.
