file(REMOVE_RECURSE
  "libdeduce_baselines.a"
)
