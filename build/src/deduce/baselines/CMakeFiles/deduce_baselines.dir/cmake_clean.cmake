file(REMOVE_RECURSE
  "CMakeFiles/deduce_baselines.dir/procedural_spt.cc.o"
  "CMakeFiles/deduce_baselines.dir/procedural_spt.cc.o.d"
  "libdeduce_baselines.a"
  "libdeduce_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
