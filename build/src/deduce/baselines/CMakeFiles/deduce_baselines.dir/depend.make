# Empty dependencies file for deduce_baselines.
# This may be replaced when dependencies are built.
