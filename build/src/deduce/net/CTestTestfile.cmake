# CMake generated Testfile for 
# Source directory: /root/repo/src/deduce/net
# Build directory: /root/repo/build/src/deduce/net
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
