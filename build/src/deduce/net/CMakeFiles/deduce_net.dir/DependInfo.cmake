
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deduce/net/codec.cc" "src/deduce/net/CMakeFiles/deduce_net.dir/codec.cc.o" "gcc" "src/deduce/net/CMakeFiles/deduce_net.dir/codec.cc.o.d"
  "/root/repo/src/deduce/net/network.cc" "src/deduce/net/CMakeFiles/deduce_net.dir/network.cc.o" "gcc" "src/deduce/net/CMakeFiles/deduce_net.dir/network.cc.o.d"
  "/root/repo/src/deduce/net/simulator.cc" "src/deduce/net/CMakeFiles/deduce_net.dir/simulator.cc.o" "gcc" "src/deduce/net/CMakeFiles/deduce_net.dir/simulator.cc.o.d"
  "/root/repo/src/deduce/net/topology.cc" "src/deduce/net/CMakeFiles/deduce_net.dir/topology.cc.o" "gcc" "src/deduce/net/CMakeFiles/deduce_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deduce/datalog/CMakeFiles/deduce_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/common/CMakeFiles/deduce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
