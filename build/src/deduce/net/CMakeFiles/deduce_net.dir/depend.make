# Empty dependencies file for deduce_net.
# This may be replaced when dependencies are built.
