file(REMOVE_RECURSE
  "libdeduce_net.a"
)
