file(REMOVE_RECURSE
  "CMakeFiles/deduce_net.dir/codec.cc.o"
  "CMakeFiles/deduce_net.dir/codec.cc.o.d"
  "CMakeFiles/deduce_net.dir/network.cc.o"
  "CMakeFiles/deduce_net.dir/network.cc.o.d"
  "CMakeFiles/deduce_net.dir/simulator.cc.o"
  "CMakeFiles/deduce_net.dir/simulator.cc.o.d"
  "CMakeFiles/deduce_net.dir/topology.cc.o"
  "CMakeFiles/deduce_net.dir/topology.cc.o.d"
  "libdeduce_net.a"
  "libdeduce_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
