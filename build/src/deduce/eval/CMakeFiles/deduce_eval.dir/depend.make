# Empty dependencies file for deduce_eval.
# This may be replaced when dependencies are built.
