file(REMOVE_RECURSE
  "libdeduce_eval.a"
)
