file(REMOVE_RECURSE
  "CMakeFiles/deduce_eval.dir/database.cc.o"
  "CMakeFiles/deduce_eval.dir/database.cc.o.d"
  "CMakeFiles/deduce_eval.dir/incremental.cc.o"
  "CMakeFiles/deduce_eval.dir/incremental.cc.o.d"
  "CMakeFiles/deduce_eval.dir/magic.cc.o"
  "CMakeFiles/deduce_eval.dir/magic.cc.o.d"
  "CMakeFiles/deduce_eval.dir/rule_eval.cc.o"
  "CMakeFiles/deduce_eval.dir/rule_eval.cc.o.d"
  "CMakeFiles/deduce_eval.dir/seminaive.cc.o"
  "CMakeFiles/deduce_eval.dir/seminaive.cc.o.d"
  "libdeduce_eval.a"
  "libdeduce_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
