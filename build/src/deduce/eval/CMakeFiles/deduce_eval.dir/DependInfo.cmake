
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deduce/eval/database.cc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/database.cc.o" "gcc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/database.cc.o.d"
  "/root/repo/src/deduce/eval/incremental.cc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/incremental.cc.o" "gcc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/incremental.cc.o.d"
  "/root/repo/src/deduce/eval/magic.cc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/magic.cc.o" "gcc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/magic.cc.o.d"
  "/root/repo/src/deduce/eval/rule_eval.cc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/rule_eval.cc.o" "gcc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/rule_eval.cc.o.d"
  "/root/repo/src/deduce/eval/seminaive.cc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/seminaive.cc.o" "gcc" "src/deduce/eval/CMakeFiles/deduce_eval.dir/seminaive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deduce/datalog/CMakeFiles/deduce_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/common/CMakeFiles/deduce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
