# Empty compiler generated dependencies file for deduce_engine.
# This may be replaced when dependencies are built.
