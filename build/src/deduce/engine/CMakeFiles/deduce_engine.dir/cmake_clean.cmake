file(REMOVE_RECURSE
  "CMakeFiles/deduce_engine.dir/aggregation.cc.o"
  "CMakeFiles/deduce_engine.dir/aggregation.cc.o.d"
  "CMakeFiles/deduce_engine.dir/engine.cc.o"
  "CMakeFiles/deduce_engine.dir/engine.cc.o.d"
  "CMakeFiles/deduce_engine.dir/plan.cc.o"
  "CMakeFiles/deduce_engine.dir/plan.cc.o.d"
  "CMakeFiles/deduce_engine.dir/regions.cc.o"
  "CMakeFiles/deduce_engine.dir/regions.cc.o.d"
  "CMakeFiles/deduce_engine.dir/runtime.cc.o"
  "CMakeFiles/deduce_engine.dir/runtime.cc.o.d"
  "CMakeFiles/deduce_engine.dir/wire.cc.o"
  "CMakeFiles/deduce_engine.dir/wire.cc.o.d"
  "libdeduce_engine.a"
  "libdeduce_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
