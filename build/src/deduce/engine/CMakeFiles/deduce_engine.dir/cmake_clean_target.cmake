file(REMOVE_RECURSE
  "libdeduce_engine.a"
)
