
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deduce/datalog/analysis.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/analysis.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/analysis.cc.o.d"
  "/root/repo/src/deduce/datalog/builtins.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/builtins.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/builtins.cc.o.d"
  "/root/repo/src/deduce/datalog/fact.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/fact.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/fact.cc.o.d"
  "/root/repo/src/deduce/datalog/parser.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/parser.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/parser.cc.o.d"
  "/root/repo/src/deduce/datalog/program.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/program.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/program.cc.o.d"
  "/root/repo/src/deduce/datalog/rule.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/rule.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/rule.cc.o.d"
  "/root/repo/src/deduce/datalog/symbol.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/symbol.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/symbol.cc.o.d"
  "/root/repo/src/deduce/datalog/term.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/term.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/term.cc.o.d"
  "/root/repo/src/deduce/datalog/unify.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/unify.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/unify.cc.o.d"
  "/root/repo/src/deduce/datalog/value.cc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/value.cc.o" "gcc" "src/deduce/datalog/CMakeFiles/deduce_datalog.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deduce/common/CMakeFiles/deduce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
