file(REMOVE_RECURSE
  "CMakeFiles/deduce_datalog.dir/analysis.cc.o"
  "CMakeFiles/deduce_datalog.dir/analysis.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/builtins.cc.o"
  "CMakeFiles/deduce_datalog.dir/builtins.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/fact.cc.o"
  "CMakeFiles/deduce_datalog.dir/fact.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/parser.cc.o"
  "CMakeFiles/deduce_datalog.dir/parser.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/program.cc.o"
  "CMakeFiles/deduce_datalog.dir/program.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/rule.cc.o"
  "CMakeFiles/deduce_datalog.dir/rule.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/symbol.cc.o"
  "CMakeFiles/deduce_datalog.dir/symbol.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/term.cc.o"
  "CMakeFiles/deduce_datalog.dir/term.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/unify.cc.o"
  "CMakeFiles/deduce_datalog.dir/unify.cc.o.d"
  "CMakeFiles/deduce_datalog.dir/value.cc.o"
  "CMakeFiles/deduce_datalog.dir/value.cc.o.d"
  "libdeduce_datalog.a"
  "libdeduce_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduce_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
