# Empty dependencies file for deduce_datalog.
# This may be replaced when dependencies are built.
