file(REMOVE_RECURSE
  "libdeduce_datalog.a"
)
