# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("deduce/common")
subdirs("deduce/datalog")
subdirs("deduce/eval")
subdirs("deduce/net")
subdirs("deduce/routing")
subdirs("deduce/engine")
subdirs("deduce/baselines")
