# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/unify_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/seminaive_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/magic_test[1]_include.cmake")
include("/root/repo/build/tests/regions_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/engine_param_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rule_eval_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/builtins_test[1]_include.cmake")
include("/root/repo/build/tests/engine_programs_test[1]_include.cmake")
include("/root/repo/build/tests/engine_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
