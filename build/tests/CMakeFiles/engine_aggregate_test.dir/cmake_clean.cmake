file(REMOVE_RECURSE
  "CMakeFiles/engine_aggregate_test.dir/engine_aggregate_test.cc.o"
  "CMakeFiles/engine_aggregate_test.dir/engine_aggregate_test.cc.o.d"
  "engine_aggregate_test"
  "engine_aggregate_test.pdb"
  "engine_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
