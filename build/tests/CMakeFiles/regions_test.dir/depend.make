# Empty dependencies file for regions_test.
# This may be replaced when dependencies are built.
