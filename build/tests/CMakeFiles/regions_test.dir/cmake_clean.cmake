file(REMOVE_RECURSE
  "CMakeFiles/regions_test.dir/regions_test.cc.o"
  "CMakeFiles/regions_test.dir/regions_test.cc.o.d"
  "regions_test"
  "regions_test.pdb"
  "regions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
