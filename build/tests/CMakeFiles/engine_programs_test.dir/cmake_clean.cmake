file(REMOVE_RECURSE
  "CMakeFiles/engine_programs_test.dir/engine_programs_test.cc.o"
  "CMakeFiles/engine_programs_test.dir/engine_programs_test.cc.o.d"
  "engine_programs_test"
  "engine_programs_test.pdb"
  "engine_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
