# Empty dependencies file for engine_programs_test.
# This may be replaced when dependencies are built.
