file(REMOVE_RECURSE
  "CMakeFiles/rule_eval_test.dir/rule_eval_test.cc.o"
  "CMakeFiles/rule_eval_test.dir/rule_eval_test.cc.o.d"
  "rule_eval_test"
  "rule_eval_test.pdb"
  "rule_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
