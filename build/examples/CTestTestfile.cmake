# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vehicle_tracking "/root/repo/build/examples/vehicle_tracking")
set_tests_properties(example_vehicle_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trajectories "/root/repo/build/examples/trajectories")
set_tests_properties(example_trajectories PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spanning_tree "/root/repo/build/examples/spanning_tree")
set_tests_properties(example_spanning_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_field_monitoring "/root/repo/build/examples/field_monitoring")
set_tests_properties(example_field_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perimeter "/root/repo/build/examples/perimeter")
set_tests_properties(example_perimeter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
