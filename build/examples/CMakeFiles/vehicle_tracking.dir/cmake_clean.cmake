file(REMOVE_RECURSE
  "CMakeFiles/vehicle_tracking.dir/vehicle_tracking.cc.o"
  "CMakeFiles/vehicle_tracking.dir/vehicle_tracking.cc.o.d"
  "vehicle_tracking"
  "vehicle_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
