# Empty dependencies file for perimeter.
# This may be replaced when dependencies are built.
