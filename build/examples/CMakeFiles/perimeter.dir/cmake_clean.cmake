file(REMOVE_RECURSE
  "CMakeFiles/perimeter.dir/perimeter.cc.o"
  "CMakeFiles/perimeter.dir/perimeter.cc.o.d"
  "perimeter"
  "perimeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perimeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
