# Empty compiler generated dependencies file for field_monitoring.
# This may be replaced when dependencies are built.
