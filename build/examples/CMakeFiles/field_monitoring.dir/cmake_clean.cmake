file(REMOVE_RECURSE
  "CMakeFiles/field_monitoring.dir/field_monitoring.cc.o"
  "CMakeFiles/field_monitoring.dir/field_monitoring.cc.o.d"
  "field_monitoring"
  "field_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
