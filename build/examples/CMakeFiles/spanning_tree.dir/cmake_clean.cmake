file(REMOVE_RECURSE
  "CMakeFiles/spanning_tree.dir/spanning_tree.cc.o"
  "CMakeFiles/spanning_tree.dir/spanning_tree.cc.o.d"
  "spanning_tree"
  "spanning_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanning_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
