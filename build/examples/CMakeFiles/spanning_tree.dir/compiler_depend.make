# Empty compiler generated dependencies file for spanning_tree.
# This may be replaced when dependencies are built.
