file(REMOVE_RECURSE
  "CMakeFiles/trajectories.dir/trajectories.cc.o"
  "CMakeFiles/trajectories.dir/trajectories.cc.o.d"
  "trajectories"
  "trajectories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
