# Empty dependencies file for trajectories.
# This may be replaced when dependencies are built.
