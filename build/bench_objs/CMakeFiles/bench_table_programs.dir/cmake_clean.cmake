file(REMOVE_RECURSE
  "../bench/bench_table_programs"
  "../bench/bench_table_programs.pdb"
  "CMakeFiles/bench_table_programs.dir/bench_table_programs.cc.o"
  "CMakeFiles/bench_table_programs.dir/bench_table_programs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
