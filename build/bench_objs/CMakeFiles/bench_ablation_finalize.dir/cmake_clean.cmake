file(REMOVE_RECURSE
  "../bench/bench_ablation_finalize"
  "../bench/bench_ablation_finalize.pdb"
  "CMakeFiles/bench_ablation_finalize.dir/bench_ablation_finalize.cc.o"
  "CMakeFiles/bench_ablation_finalize.dir/bench_ablation_finalize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_finalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
