# Empty dependencies file for bench_ablation_finalize.
# This may be replaced when dependencies are built.
