file(REMOVE_RECURSE
  "../bench/bench_aggregation"
  "../bench/bench_aggregation.pdb"
  "CMakeFiles/bench_aggregation.dir/bench_aggregation.cc.o"
  "CMakeFiles/bench_aggregation.dir/bench_aggregation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
