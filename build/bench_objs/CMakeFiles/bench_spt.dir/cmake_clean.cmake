file(REMOVE_RECURSE
  "../bench/bench_spt"
  "../bench/bench_spt.pdb"
  "CMakeFiles/bench_spt.dir/bench_spt.cc.o"
  "CMakeFiles/bench_spt.dir/bench_spt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
