# Empty dependencies file for bench_spt.
# This may be replaced when dependencies are built.
