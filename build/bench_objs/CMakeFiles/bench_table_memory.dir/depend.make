# Empty dependencies file for bench_table_memory.
# This may be replaced when dependencies are built.
