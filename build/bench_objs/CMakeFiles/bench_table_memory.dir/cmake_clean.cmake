file(REMOVE_RECURSE
  "../bench/bench_table_memory"
  "../bench/bench_table_memory.pdb"
  "CMakeFiles/bench_table_memory.dir/bench_table_memory.cc.o"
  "CMakeFiles/bench_table_memory.dir/bench_table_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
