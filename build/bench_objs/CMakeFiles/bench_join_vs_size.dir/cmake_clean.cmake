file(REMOVE_RECURSE
  "../bench/bench_join_vs_size"
  "../bench/bench_join_vs_size.pdb"
  "CMakeFiles/bench_join_vs_size.dir/bench_join_vs_size.cc.o"
  "CMakeFiles/bench_join_vs_size.dir/bench_join_vs_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
