# Empty dependencies file for bench_ablation_spatial.
# This may be replaced when dependencies are built.
