file(REMOVE_RECURSE
  "../bench/bench_ablation_spatial"
  "../bench/bench_ablation_spatial.pdb"
  "CMakeFiles/bench_ablation_spatial.dir/bench_ablation_spatial.cc.o"
  "CMakeFiles/bench_ablation_spatial.dir/bench_ablation_spatial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
