# Empty dependencies file for bench_join_vs_streams.
# This may be replaced when dependencies are built.
