file(REMOVE_RECURSE
  "../bench/bench_join_vs_streams"
  "../bench/bench_join_vs_streams.pdb"
  "CMakeFiles/bench_join_vs_streams.dir/bench_join_vs_streams.cc.o"
  "CMakeFiles/bench_join_vs_streams.dir/bench_join_vs_streams.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_vs_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
