file(REMOVE_RECURSE
  "../bench/bench_loss_robustness"
  "../bench/bench_loss_robustness.pdb"
  "CMakeFiles/bench_loss_robustness.dir/bench_loss_robustness.cc.o"
  "CMakeFiles/bench_loss_robustness.dir/bench_loss_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
