# Empty compiler generated dependencies file for bench_loss_robustness.
# This may be replaced when dependencies are built.
