
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_loss_robustness.cc" "bench_objs/CMakeFiles/bench_loss_robustness.dir/bench_loss_robustness.cc.o" "gcc" "bench_objs/CMakeFiles/bench_loss_robustness.dir/bench_loss_robustness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deduce/engine/CMakeFiles/deduce_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/baselines/CMakeFiles/deduce_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/eval/CMakeFiles/deduce_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/routing/CMakeFiles/deduce_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/net/CMakeFiles/deduce_net.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/datalog/CMakeFiles/deduce_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/deduce/common/CMakeFiles/deduce_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
