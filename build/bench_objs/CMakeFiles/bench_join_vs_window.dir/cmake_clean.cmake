file(REMOVE_RECURSE
  "../bench/bench_join_vs_window"
  "../bench/bench_join_vs_window.pdb"
  "CMakeFiles/bench_join_vs_window.dir/bench_join_vs_window.cc.o"
  "CMakeFiles/bench_join_vs_window.dir/bench_join_vs_window.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
