# Empty dependencies file for bench_join_vs_window.
# This may be replaced when dependencies are built.
