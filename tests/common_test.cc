#include <gtest/gtest.h>

#include "deduce/common/hash.h"
#include "deduce/common/rng.h"
#include "deduce/common/status.h"
#include "deduce/common/statusor.h"
#include "deduce/common/strings.h"

namespace deduce {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kOutOfRange,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Status Fails() { return Status::NotFound("nope"); }
Status Propagates() {
  DEDUCE_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}
StatusOr<int> Quarter(int x) {
  DEDUCE_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = Half(8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 4);
  StatusOr<int> e = Half(3);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // second Half fails
  EXPECT_FALSE(Quarter(5).ok());  // first Half fails
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SplitJoinTrim) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrTrim("  x y\t\n"), "x y");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(StartsWith("spatial:3", "spatial:"));
  EXPECT_FALSE(StartsWith("sp", "spatial:"));
  EXPECT_TRUE(EndsWith("file.dlog", ".dlog"));
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  // Parent stream continues deterministically after the fork.
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace deduce
