#include "deduce/datalog/parser.h"

#include <gtest/gtest.h>

namespace deduce {
namespace {

TEST(ParserTest, SimpleTerms) {
  EXPECT_EQ(ParseTerm("42").value(), Term::Int(42));
  EXPECT_EQ(ParseTerm("-7").value(), Term::Int(-7));
  EXPECT_EQ(ParseTerm("2.5").value(), Term::Real(2.5));
  EXPECT_EQ(ParseTerm("foo").value(), Term::Sym("foo"));
  EXPECT_EQ(ParseTerm("\"hello world\"").value(), Term::Sym("hello world"));
  EXPECT_EQ(ParseTerm("'quoted'").value(), Term::Sym("quoted"));
  EXPECT_EQ(ParseTerm("X").value(), Term::Var("X"));
}

TEST(ParserTest, FunctionTerms) {
  Term t = ParseTerm("f(1, X, g(Y))").value();
  ASSERT_TRUE(t.is_function());
  EXPECT_EQ(SymbolName(t.functor()), "f");
  ASSERT_EQ(t.args().size(), 3u);
  EXPECT_EQ(t.args()[0], Term::Int(1));
}

TEST(ParserTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as +(1, *(2, 3)).
  Term t = ParseTerm("1 + 2 * 3").value();
  ASSERT_TRUE(t.is_function());
  EXPECT_EQ(SymbolName(t.functor()), "+");
  EXPECT_EQ(SymbolName(t.args()[1].functor()), "*");
  // Parenthesized.
  Term u = ParseTerm("(1 + 2) * 3").value();
  EXPECT_EQ(SymbolName(u.functor()), "*");
}

TEST(ParserTest, Lists) {
  EXPECT_EQ(ParseTerm("[]").value(), Term::Nil());
  EXPECT_EQ(ParseTerm("[1, 2]").value(),
            Term::MakeList({Term::Int(1), Term::Int(2)}));
  EXPECT_EQ(ParseTerm("[X | R]").value(),
            Term::Cons(Term::Var("X"), Term::Var("R")));
  EXPECT_EQ(ParseTerm("[1, 2 | T]").value(),
            Term::MakeList({Term::Int(1), Term::Int(2)}, Term::Var("T")));
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  Term t = ParseTerm("f(_, _)").value();
  EXPECT_NE(t.args()[0], t.args()[1]);
  EXPECT_TRUE(t.args()[0].is_variable());
}

TEST(ParserTest, FactRule) {
  Rule r = ParseRule("edge(1, 2).").value();
  EXPECT_TRUE(r.body.empty());
  EXPECT_EQ(SymbolName(r.head.predicate), "edge");
  ASSERT_EQ(r.head.args.size(), 2u);
}

TEST(ParserTest, SimpleRule) {
  Rule r = ParseRule("path(X, Y) :- edge(X, Y).").value();
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.body[0].kind, Literal::Kind::kPositive);
  EXPECT_EQ(r.ToString(), "path(X, Y) :- edge(X, Y).");
}

TEST(ParserTest, NegationForms) {
  Rule r1 = ParseRule("a(X) :- b(X), NOT c(X).").value();
  EXPECT_EQ(r1.body[1].kind, Literal::Kind::kNegated);
  Rule r2 = ParseRule("a(X) :- b(X), not c(X).").value();
  EXPECT_EQ(r2.body[1].kind, Literal::Kind::kNegated);
  Rule r3 = ParseRule("a(X) :- b(X), !c(X).").value();
  EXPECT_EQ(r3.body[1].kind, Literal::Kind::kNegated);
}

TEST(ParserTest, Comparisons) {
  Rule r = ParseRule("a(X) :- b(X, Y), X < Y, Y <= 10, X != 3, X >= 0.")
               .value();
  ASSERT_EQ(r.body.size(), 5u);
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(r.body[1].cmp, CmpOp::kLt);
  EXPECT_EQ(r.body[2].cmp, CmpOp::kLe);
  EXPECT_EQ(r.body[3].cmp, CmpOp::kNe);
  EXPECT_EQ(r.body[4].cmp, CmpOp::kGe);
}

TEST(ParserTest, ComparisonWithArithmetic) {
  Rule r = ParseRule("a(D) :- b(D), (D + 1) > 5.").value();
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kComparison);
  EXPECT_EQ(r.body[1].cmp, CmpOp::kGt);
  EXPECT_TRUE(r.body[1].lhs.is_function());
}

TEST(ParserTest, PaperExample1UncoveredVehicle) {
  auto program = ParseProgram(R"(
    cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T),
                  dist(L1, L2) <= 5.
    uncov(L, T) :- veh("enemy", L, T), NOT cov(L, T).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 2u);
}

TEST(ParserTest, PaperExample2Trajectories) {
  auto program = ParseProgram(R"(
    notstartreport(R2) :- report(R1), report(R2), close(R1, R2).
    notlastreport(R1) :- report(R1), report(R2), close(R1, R2).
    traj([R1, R2]) :- report(R1), report(R2), close(R1, R2),
                      NOT notstartreport(R1).
    traj([R2, X | R1]) :- traj([X | R1]), report(R2), close(X, R2).
    completetraj([X | R]) :- traj([X | R]), NOT notlastreport(X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 5u);
}

TEST(ParserTest, PaperExample3LogicH) {
  auto program = ParseProgram(R"(
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 3u);
  EXPECT_EQ(program->facts().size(), 1u);
}

TEST(ParserTest, HeadAggregates) {
  Rule r = ParseRule("mind(Y, min(D)) :- h(X, Y, D).").value();
  ASSERT_EQ(r.aggregates.size(), 1u);
  EXPECT_EQ(r.aggregates[0].kind, AggKind::kMin);
  EXPECT_EQ(r.aggregates[0].head_position, 1u);
  EXPECT_EQ(r.aggregates[0].input, Term::Var("D"));
}

TEST(ParserTest, Declarations) {
  auto program = ParseProgram(R"(
    .decl veh(type, x, y, t) input window 30 storage row join column.
    .decl h(src, dst, d) home dst stage d storage local.
    .decl q/2 input.
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const PredicateDecl* veh = program->FindDecl(Intern("veh"));
  ASSERT_NE(veh, nullptr);
  EXPECT_TRUE(veh->extensional);
  EXPECT_EQ(veh->arity, 4u);
  EXPECT_EQ(veh->window, 30);
  EXPECT_EQ(veh->storage_policy, "row");
  EXPECT_EQ(veh->join_policy, "column");
  const PredicateDecl* h = program->FindDecl(Intern("h"));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->home_arg, 1u);
  EXPECT_EQ(h->stage_arg, 2u);
  EXPECT_EQ(h->storage_policy, "local");
  const PredicateDecl* q = program->FindDecl(Intern("q"));
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->arity, 2u);
}

TEST(ParserTest, SpatialPolicy) {
  auto program = ParseProgram(".decl r(x) input storage spatial 3.");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->FindDecl(Intern("r"))->storage_policy, "spatial:3");
}

TEST(ParserTest, Comments) {
  auto program = ParseProgram(R"(
    % line comment
    // another line comment
    /* block
       comment */
    a(1).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->facts().size(), 1u);
}

TEST(ParserTest, ErrorUnterminatedString) {
  EXPECT_FALSE(ParseProgram("a(\"oops).").ok());
}

TEST(ParserTest, ErrorMissingDot) {
  auto st = ParseProgram("a(1) :- b(1)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("'.'"), std::string::npos);
}

TEST(ParserTest, ErrorUnsafeRule) {
  // Y only in head.
  auto st = ParseProgram("a(X, Y) :- b(X).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("unsafe"), std::string::npos);
}

TEST(ParserTest, ErrorUnsafeNegation) {
  auto st = ParseProgram("a(X) :- b(X), NOT c(X, Y).");
  EXPECT_FALSE(st.ok());
}

TEST(ParserTest, SafeViaAssignment) {
  auto st = ParseProgram("a(X, Y) :- b(X), Y = X + 1.");
  EXPECT_TRUE(st.ok()) << st.status();
}

TEST(ParserTest, ErrorBadDeclProperty) {
  EXPECT_FALSE(ParseProgram(".decl a(x) frobnicate.").ok());
}

TEST(ParserTest, ErrorHomeOutOfRange) {
  EXPECT_FALSE(ParseProgram(".decl a(x) home 5.").ok());
}

TEST(ParserTest, ErrorConflictingArity) {
  EXPECT_FALSE(ParseProgram(".decl a/2.\n.decl a/3.").ok());
}

TEST(ParserTest, NonGroundFactRejected) {
  EXPECT_FALSE(ParseProgram("a(X).").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* text =
      "uncov(L, T) :- veh(\"enemy\", L, T), NOT cov(L, T).";
  Rule r = ParseRule(text).value();
  Rule r2 = ParseRule(r.ToString()).value();
  EXPECT_EQ(r.ToString(), r2.ToString());
}

TEST(ParserTest, ZeroArityAtoms) {
  auto program = ParseProgram("alarm :- tick, NOT quiet.\ntick.");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->rules().size(), 1u);
  EXPECT_EQ(program->facts().size(), 1u);
}

}  // namespace
}  // namespace deduce
