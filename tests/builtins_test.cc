#include "deduce/datalog/builtins.h"

#include <gtest/gtest.h>

#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  BuiltinsTest() : registry_(BuiltinRegistry::Default()) {}

  Term Eval(const std::string& text) {
    auto term = ParseTerm(text);
    EXPECT_TRUE(term.ok()) << term.status();
    auto result = EvalTerm(*term, registry_);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  Status EvalStatus(const std::string& text) {
    auto term = ParseTerm(text);
    EXPECT_TRUE(term.ok());
    return EvalTerm(*term, registry_).status();
  }

  BuiltinRegistry registry_;
};

TEST_F(BuiltinsTest, IntegerArithmetic) {
  EXPECT_EQ(Eval("1 + 2"), Term::Int(3));
  EXPECT_EQ(Eval("7 - 10"), Term::Int(-3));
  EXPECT_EQ(Eval("6 * 7"), Term::Int(42));
  EXPECT_EQ(Eval("7 / 2"), Term::Int(3));  // integer division
  EXPECT_EQ(Eval("mod(7, 3)"), Term::Int(1));
  EXPECT_EQ(Eval("abs(-4)"), Term::Int(4));
  EXPECT_EQ(Eval("min(3, 9)"), Term::Int(3));
  EXPECT_EQ(Eval("max(3, 9)"), Term::Int(9));
}

TEST_F(BuiltinsTest, MixedPromotesToDouble) {
  EXPECT_EQ(Eval("1 + 2.5"), Term::Real(3.5));
  EXPECT_EQ(Eval("5.0 / 2"), Term::Real(2.5));
}

TEST_F(BuiltinsTest, NestedEvaluation) {
  EXPECT_EQ(Eval("(1 + 2) * (10 - 6)"), Term::Int(12));
}

TEST_F(BuiltinsTest, DivisionByZero) {
  EXPECT_EQ(EvalStatus("1 / 0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(EvalStatus("mod(1, 0)").code(), StatusCode::kInvalidArgument);
}

TEST_F(BuiltinsTest, TypeErrors) {
  EXPECT_EQ(EvalStatus("1 + foo").code(), StatusCode::kInvalidArgument);
}

TEST_F(BuiltinsTest, DistOverLocAndLists) {
  EXPECT_EQ(Eval("dist(loc(0, 0), loc(3, 4))"), Term::Real(5.0));
  EXPECT_EQ(Eval("dist([0, 0], [3, 4])"), Term::Real(5.0));
  EXPECT_EQ(Eval("dist(0, 0, 3, 4)"), Term::Real(5.0));
}

TEST_F(BuiltinsTest, ListFunctions) {
  EXPECT_EQ(Eval("length([4, 5, 6])"), Term::Int(3));
  EXPECT_EQ(Eval("length([])"), Term::Int(0));
  EXPECT_EQ(Eval("append([1], [2, 3])"), ParseTerm("[1, 2, 3]").value());
  EXPECT_EQ(Eval("head([9, 8])"), Term::Int(9));
  EXPECT_EQ(Eval("tail([9, 8])"), ParseTerm("[8]").value());
  EXPECT_EQ(Eval("last([1, 2, 3])"), Term::Int(3));
  EXPECT_EQ(Eval("reverse([1, 2, 3])"), ParseTerm("[3, 2, 1]").value());
  EXPECT_EQ(Eval("nth([5, 6, 7], 1)"), Term::Int(6));
}

TEST_F(BuiltinsTest, ListFunctionErrors) {
  EXPECT_FALSE(EvalStatus("head([])").ok());
  EXPECT_EQ(EvalStatus("nth([1], 5)").code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(EvalStatus("length(42)").ok());
}

TEST_F(BuiltinsTest, MemberAndPrefix) {
  auto member = registry_.FindPredicate(Intern("member"), 2);
  ASSERT_NE(member, nullptr);
  EXPECT_TRUE(*(*member)({Term::Int(2), ParseTerm("[1, 2, 3]").value()}));
  EXPECT_FALSE(*(*member)({Term::Int(9), ParseTerm("[1, 2, 3]").value()}));
  auto prefix = registry_.FindPredicate(Intern("prefix"), 2);
  ASSERT_NE(prefix, nullptr);
  EXPECT_TRUE(*(*prefix)({ParseTerm("[1, 2]").value(),
                          ParseTerm("[1, 2, 3]").value()}));
  EXPECT_FALSE(*(*prefix)({ParseTerm("[2]").value(),
                           ParseTerm("[1, 2, 3]").value()}));
}

TEST_F(BuiltinsTest, UnregisteredFunctorsAreConstructors) {
  // 'loc' is not an evaluable function: stays symbolic.
  Term t = Eval("loc(1 + 1, 3)");
  ASSERT_TRUE(t.is_function());
  EXPECT_EQ(SymbolName(t.functor()), "loc");
  EXPECT_EQ(t.args()[0], Term::Int(2));  // inner arithmetic still evaluates
}

TEST_F(BuiltinsTest, NonGroundLeftAlone) {
  auto term = ParseTerm("X + 1");
  auto result = EvalTerm(*term, registry_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->is_ground());
  EXPECT_TRUE(result->is_function());
}

TEST_F(BuiltinsTest, UserRegistrationShadowsAndExtends) {
  BuiltinRegistry reg = BuiltinRegistry::Default();
  reg.RegisterFunction("twice", 1, [](const std::vector<Term>& args)
                                       -> StatusOr<Term> {
    return Term::Int(args[0].value().as_int() * 2);
  });
  reg.RegisterPredicate("isodd", 1, [](const std::vector<Term>& args)
                                        -> StatusOr<bool> {
    return args[0].value().as_int() % 2 != 0;
  });
  auto result = EvalTerm(ParseTerm("twice(21)").value(), reg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Term::Int(42));
  auto isodd = reg.FindPredicate(Intern("isodd"), 1);
  ASSERT_NE(isodd, nullptr);
  EXPECT_TRUE(*(*isodd)({Term::Int(7)}));
}

TEST_F(BuiltinsTest, ArityDistinguishesRegistrations) {
  // dist/2 and dist/4 are distinct.
  EXPECT_NE(registry_.FindFunction(Intern("dist"), 2), nullptr);
  EXPECT_NE(registry_.FindFunction(Intern("dist"), 4), nullptr);
  EXPECT_EQ(registry_.FindFunction(Intern("dist"), 3), nullptr);
}

TEST(CmpTest, NumericAndSymbolic) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Term::Int(1), Term::Int(2)));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, Term::Int(2), Term::Real(2.0)));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, Term::Real(1.5), Term::Int(2)));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, Term::Sym("a"), Term::Sym("b")));
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, Term::Sym("apple"), Term::Sym("banana")));
  // Structural comparison of function terms.
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, ParseTerm("f(1, 2)").value(),
                      ParseTerm("f(1, 2)").value()));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, ParseTerm("f(1)").value(),
                      ParseTerm("f(2)").value()));
}

}  // namespace
}  // namespace deduce
