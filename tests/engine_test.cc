#include "deduce/engine/engine.h"

#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

Fact F(const std::string& pred, std::vector<Term> args) {
  return Fact(Intern(pred), std::move(args));
}

struct WorkItem {
  SimTime time;
  NodeId node;
  StreamOp op;
  Fact fact;
};

/// Zero-loss, zero-skew link for exact-equivalence tests.
LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  link.loss_rate = 0;
  link.max_clock_skew = 0;
  return link;
}

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

/// Runs the workload on the distributed engine and on the centralized
/// incremental reference; asserts the derived relations agree exactly
/// (Theorems 1-3: with bounded delays and no losses the distributed result
/// equals the sequential per-timestamp evaluation).
void CheckEquivalence(const std::string& program_text,
                      const Topology& topology,
                      const std::vector<WorkItem>& work,
                      const std::vector<std::string>& check_preds,
                      const EngineOptions& options = {}, uint64_t seed = 1) {
  Program program = Parse(program_text);

  Network net(topology, ExactLink(), seed);
  auto engine = DistributedEngine::Create(&net, program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    Status st = (*engine)->Inject(item.node, item.op, item.fact);
    ASSERT_TRUE(st.ok()) << st << " at " << item.fact.ToString();
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    ASSERT_TRUE((*reference)->Apply(ev, nullptr).ok());
  }
  net.sim().Run();

  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  for (const std::string& pred_name : check_preds) {
    SymbolId pred = Intern(pred_name);
    std::vector<Fact> got = (*engine)->ResultFacts(pred);
    std::vector<Fact> want = (*reference)->AliveFacts(pred);
    std::set<std::string> got_set, want_set;
    for (const Fact& f : got) got_set.insert(f.ToString());
    for (const Fact& f : want) want_set.insert(f.ToString());
    EXPECT_EQ(got_set, want_set) << "predicate " << pred_name;
  }
}

constexpr char kJoinProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(X, A, B) :- r(X, A, N1), s(X, B, N2).
)";

// Facts carry their source node so workloads never generate the same fact
// at two different sources (the paper's tuples are sensor readings, which
// are naturally source-unique).
std::vector<WorkItem> TwoStreamWorkload(int nodes, int events, uint64_t seed,
                                        double delete_fraction = 0.0) {
  Rng rng(seed);
  std::vector<WorkItem> out;
  std::vector<std::pair<NodeId, Fact>> alive;
  SimTime t = 10'000;
  for (int i = 0; i < events; ++i, t += 150'000) {
    if (!alive.empty() && rng.Bernoulli(delete_fraction)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      out.push_back({t, alive[k].first, StreamOp::kDelete, alive[k].second});
      alive.erase(alive.begin() + static_cast<long>(k));
      continue;
    }
    NodeId node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    const char* pred = rng.Bernoulli(0.5) ? "r" : "s";
    Fact f = F(pred, {Term::Int(rng.Uniform(0, 3)), Term::Int(rng.Uniform(0, 9)),
                      Term::Int(node)});
    out.push_back({t, node, StreamOp::kInsert, f});
    alive.emplace_back(node, f);
  }
  return out;
}

TEST(EngineTest, TwoStreamJoinInsertOnly) {
  CheckEquivalence(kJoinProgram, Topology::Grid(5),
                   TwoStreamWorkload(25, 20, 42), {"t"});
}

TEST(EngineTest, TwoStreamJoinWithDeletions) {
  CheckEquivalence(kJoinProgram, Topology::Grid(5),
                   TwoStreamWorkload(25, 30, 43, 0.3), {"t"});
}

TEST(EngineTest, ThreeStreamJoin) {
  const char* program = R"(
    .decl a/2 input.
    .decl b/2 input.
    .decl c/2 input.
    out(X, N1, N2, N3) :- a(X, N1), b(X, N2), c(X, N3).
  )";
  Rng rng(7);
  std::vector<WorkItem> work;
  SimTime t = 10'000;
  const char* preds[] = {"a", "b", "c"};
  for (int i = 0; i < 18; ++i, t += 200'000) {
    NodeId node = static_cast<NodeId>(rng.Uniform(0, 15));
    work.push_back({t, node, StreamOp::kInsert,
                    F(preds[i % 3],
                      {Term::Int(rng.Uniform(0, 2)), Term::Int(node)})});
  }
  CheckEquivalence(program, Topology::Grid(4), work, {"out"});
}

TEST(EngineTest, NegationUncoveredVehicle) {
  const char* program = R"(
    .decl enemy/3 input.
    .decl friendly/3 input.
    cov(L1, L2, T) :- enemy(L1, T, N1), friendly(L2, T, N2),
                      dist(L1, L2) <= 5.0.
    uncov(L, T) :- enemy(L, T, N), NOT cov(L, L2, T).
  )";
  // NOTE: 'NOT cov(L, L2, T)' with free L2 is unsafe; use a correct form.
  const char* fixed = R"(
    .decl enemy/3 input.
    .decl friendly/3 input.
    cov(L1, T) :- enemy(L1, T, N1), friendly(L2, T, N2),
                  dist(L1, L2) <= 5.0.
    uncov(L, T) :- enemy(L, T, N), NOT cov(L, T).
  )";
  (void)program;
  Rng rng(11);
  std::vector<WorkItem> work;
  std::vector<std::pair<NodeId, Fact>> friendlies;
  SimTime t = 10'000;
  for (int i = 0; i < 24; ++i, t += 250'000) {
    NodeId node = static_cast<NodeId>(rng.Uniform(0, 24));
    if (!friendlies.empty() && rng.Bernoulli(0.25)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(friendlies.size()) - 1));
      work.push_back(
          {t, friendlies[k].first, StreamOp::kDelete, friendlies[k].second});
      friendlies.erase(friendlies.begin() + static_cast<long>(k));
      continue;
    }
    Term loc = Term::Function(
        "loc", {Term::Int(rng.Uniform(0, 8)), Term::Int(rng.Uniform(0, 8))});
    if (rng.Bernoulli(0.5)) {
      work.push_back({t, node, StreamOp::kInsert,
                      F("enemy", {loc, Term::Int(1), Term::Int(node)})});
    } else {
      Fact f = F("friendly", {loc, Term::Int(1), Term::Int(node)});
      work.push_back({t, node, StreamOp::kInsert, f});
      friendlies.emplace_back(node, f);
    }
  }
  CheckEquivalence(fixed, Topology::Grid(5), work, {"cov", "uncov"});
}

TEST(EngineTest, DerivedStreamCascade) {
  // Two levels of derivation: t feeds u.
  const char* program = R"(
    .decl r/2 input.
    .decl s/2 input.
    t(X, N) :- r(X, N), s(X, N2).
    u(X) :- t(X, N), r(X, N).
  )";
  CheckEquivalence(program, Topology::Grid(4),
                   TwoStreamWorkload(16, 16, 17), {"t", "u"});
}

TEST(EngineTest, AllApproachesAgree) {
  // Naive Broadcast, Local Storage (serpentine) and Centroid are degenerate
  // GPA instances (§III-A): all must produce the PA result.
  std::vector<WorkItem> work = TwoStreamWorkload(16, 14, 99, 0.2);
  for (StoragePolicy storage :
       {StoragePolicy::kRow, StoragePolicy::kBroadcast, StoragePolicy::kLocal,
        StoragePolicy::kCentroid}) {
    EngineOptions options;
    options.planner.default_storage = storage;
    SCOPED_TRACE(StoragePolicyToString(storage));
    CheckEquivalence(kJoinProgram, Topology::Grid(4), work, {"t"}, options);
  }
}

TEST(EngineTest, MultipassMatchesSinglePass) {
  EngineOptions options;
  options.planner.multipass = true;
  CheckEquivalence(kJoinProgram, Topology::Grid(4),
                   TwoStreamWorkload(16, 16, 5, 0.2), {"t"}, options);
}

TEST(EngineTest, ArbitraryTopologyBands) {
  Rng rng(31);
  Topology topo = Topology::RandomGeometric(30, 6, 6, 2.0, &rng);
  ASSERT_TRUE(topo.IsConnected());
  CheckEquivalence(kJoinProgram, topo, TwoStreamWorkload(30, 16, 21, 0.2),
                   {"t"});
}

TEST(EngineTest, RandomizedEquivalenceSweep) {
  for (uint64_t seed : {301u, 302u, 303u}) {
    CheckEquivalence(kJoinProgram, Topology::Grid(4),
                     TwoStreamWorkload(16, 24, seed, 0.25), {"t"});
  }
}

// --- the shortest-path-tree program (Example 3 / §VI) ---

constexpr char kLogicJ[] = R"(
  .decl g/2 input storage spatial 1.
  .decl j(y, d) home y stage d storage local.
  .decl j1(y, d) home y stage d storage local.
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

TEST(EngineTest, LogicJBuildsBfsTreeOnGrid) {
  Topology topo = Topology::Grid(4);
  Network net(topo, ExactLink(), 3);
  Program program = Parse(kLogicJ);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  // Every node announces its adjacency (the g base stream), staggered.
  SimTime t = 10'000;
  for (int v = 0; v < topo.node_count(); ++v) {
    for (NodeId u : topo.neighbors(v)) {
      net.sim().RunUntil(t);
      ASSERT_TRUE(
          (*engine)
              ->Inject(v, StreamOp::kInsert, F("g", {Term::Int(v), Term::Int(u)}))
              .ok());
      t += 20'000;
    }
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  RoutingTable rt(&topo);
  std::vector<Fact> j = (*engine)->ResultFacts(Intern("j"));
  std::map<int, int> depth_of;
  for (const Fact& f : j) {
    int y = static_cast<int>(f.args()[0].value().as_int());
    int d = static_cast<int>(f.args()[1].value().as_int());
    auto [it, inserted] = depth_of.emplace(y, d);
    EXPECT_TRUE(inserted) << "two j facts for node " << y;
  }
  ASSERT_EQ(depth_of.size(), static_cast<size_t>(topo.node_count()));
  for (int v = 0; v < topo.node_count(); ++v) {
    EXPECT_EQ(depth_of[v], rt.HopDistance(v, 0)) << "node " << v;
  }
}

TEST(EngineTest, LogicJRepairsAfterEdgeDeletion) {
  // 0-1-2 line plus a long detour 0-3-4-5-2 (grid coordinates make this a
  // 3x2-ish shape); deleting edge 1-2 must raise node 2's depth.
  Topology topo = Topology::Grid(3);  // nodes 0..8
  Network net(topo, ExactLink(), 4);
  Program program = Parse(kLogicJ);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  SimTime t = 10'000;
  auto inject = [&](NodeId at, StreamOp op, int a, int b) {
    net.sim().RunUntil(t);
    ASSERT_TRUE(
        (*engine)->Inject(at, op, F("g", {Term::Int(a), Term::Int(b)})).ok());
    t += 30'000;
  };
  for (int v = 0; v < topo.node_count(); ++v) {
    for (NodeId u : topo.neighbors(v)) inject(v, StreamOp::kInsert, v, u);
  }
  net.sim().Run();

  // Node 2 (corner) initially at depth 2.
  auto depth = [&](int node) -> int {
    for (const Fact& f : (*engine)->ResultFacts(Intern("j"))) {
      if (f.args()[0].value().as_int() == node) {
        return static_cast<int>(f.args()[1].value().as_int());
      }
    }
    return -1;
  };
  EXPECT_EQ(depth(2), 2);

  // Remove both directions of edge 1-2: node 2 must now go through node 5.
  inject(1, StreamOp::kDelete, 1, 2);
  inject(2, StreamOp::kDelete, 2, 1);
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];
  // Depths: 2 reachable via 0-3? grid 3x3: node 2=(2,0); without edge 1-2,
  // path 0-1-4-5-2 or 0-3-4-5-2 gives depth 4.
  EXPECT_EQ(depth(2), 4);
  EXPECT_EQ(depth(1), 1);
  EXPECT_EQ(depth(5), 3);
}

TEST(EngineTest, SlidingWindowStopsMatching) {
  const char* program = R"(
    .decl a(x, n) input window 1000000.
    .decl b(x, n) input window 1000000.
    both(X) :- a(X, N1), b(X, N2).
  )";
  Topology topo = Topology::Grid(4);
  Network net(topo, ExactLink(), 5);
  auto engine = DistributedEngine::Create(&net, Parse(program), EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  // a(1) at t=10ms; b(1) arrives at t=2s, after a's 1s window: no match.
  net.sim().RunUntil(10'000);
  ASSERT_TRUE(
      (*engine)->Inject(0, StreamOp::kInsert, F("a", {Term::Int(1), Term::Int(0)}))
          .ok());
  net.sim().RunUntil(2'000'000);
  ASSERT_TRUE(
      (*engine)->Inject(15, StreamOp::kInsert, F("b", {Term::Int(1), Term::Int(15)}))
          .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->ResultFacts(Intern("both")).empty());

  // Fresh pair within the window: matches.
  Network net2(topo, ExactLink(), 6);
  auto engine2 =
      DistributedEngine::Create(&net2, Parse(program), EngineOptions{});
  ASSERT_TRUE(engine2.ok());
  net2.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine2)
                  ->Inject(0, StreamOp::kInsert,
                           F("a", {Term::Int(1), Term::Int(0)}))
                  .ok());
  net2.sim().RunUntil(200'000);
  ASSERT_TRUE((*engine2)
                  ->Inject(15, StreamOp::kInsert,
                           F("b", {Term::Int(1), Term::Int(15)}))
                  .ok());
  net2.sim().Run();
  EXPECT_EQ((*engine2)->ResultFacts(Intern("both")).size(), 1u);
}

TEST(EngineTest, LossyNetworkDegradesGracefully) {
  // With loss, the engine must not crash; completeness may drop.
  LinkModel link = ExactLink();
  link.loss_rate = 0.1;
  Program program = Parse(kJoinProgram);
  Network net(Topology::Grid(4), link, 777);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  std::vector<WorkItem> work = TwoStreamWorkload(16, 20, 888);
  for (const WorkItem& item : work) {
    net.sim().RunUntil(item.time);
    ASSERT_TRUE((*engine)->Inject(item.node, item.op, item.fact).ok());
  }
  net.sim().Run();
  // Result is a subset of the loss-free result.
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  ASSERT_TRUE(reference.ok());
  for (const WorkItem& item : work) {
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    ASSERT_TRUE((*reference)->Apply(ev, nullptr).ok());
  }
  std::set<std::string> want;
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    want.insert(f.ToString());
  }
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    EXPECT_TRUE(want.count(f.ToString())) << f.ToString();
  }
}

TEST(EngineTest, StatsPopulated) {
  Program program = Parse(kJoinProgram);
  Network net(Topology::Grid(4), ExactLink(), 9);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  for (const WorkItem& item : TwoStreamWorkload(16, 10, 10)) {
    net.sim().RunUntil(item.time);
    ASSERT_TRUE((*engine)->Inject(item.node, item.op, item.fact).ok());
  }
  net.sim().Run();
  EXPECT_EQ((*engine)->stats().tuples_injected, 10u);
  EXPECT_GT((*engine)->stats().join_passes, 0u);
  EXPECT_GT((*engine)->stats().replicas_stored, 0u);
  EXPECT_GT(net.stats().TotalMessages(), 0u);
  EXPECT_GT((*engine)->TotalReplicas(), 0u);
}

TEST(EngineTest, InjectionErrors) {
  Program program = Parse(kJoinProgram);
  Network net(Topology::Grid(3), ExactLink(), 9);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  // Derived predicate.
  EXPECT_EQ((*engine)
                ->Inject(0, StreamOp::kInsert,
                         F("t", {Term::Int(1), Term::Int(1), Term::Int(1)}))
                .code(),
            StatusCode::kInvalidArgument);
  // Unknown predicate.
  EXPECT_EQ(
      (*engine)->Inject(0, StreamOp::kInsert, F("zzz", {Term::Int(1)})).code(),
      StatusCode::kNotFound);
  // Deleting a tuple this node never generated.
  EXPECT_EQ((*engine)
                ->Inject(0, StreamOp::kDelete,
                         F("r", {Term::Int(1), Term::Int(1), Term::Int(1)}))
                .code(),
            StatusCode::kNotFound);
  // Node out of range.
  EXPECT_EQ(
      (*engine)->Inject(99, StreamOp::kInsert, F("r", {Term::Int(1)})).code(),
      StatusCode::kOutOfRange);
}

// --- centralized baseline ---

TEST(CentralizedEngineTest, MatchesReference) {
  Program program = Parse(kJoinProgram);
  Network net(Topology::Grid(4), ExactLink(), 12);
  auto engine =
      CentralizedEngine::Create(&net, program, /*sink=*/0, IncrementalOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto reference = IncrementalEngine::Create(program, IncrementalOptions{});
  ASSERT_TRUE(reference.ok());
  for (const WorkItem& item : TwoStreamWorkload(16, 20, 20, 0.2)) {
    net.sim().RunUntil(item.time);
    ASSERT_TRUE((*engine)->Inject(item.node, item.op, item.fact).ok());
    StreamEvent ev;
    ev.op = item.op;
    ev.fact = item.fact;
    ev.id = TupleId{item.node, item.time, 0};
    ev.time = item.time;
    ASSERT_TRUE((*reference)->Apply(ev, nullptr).ok());
  }
  net.sim().Run();
  EXPECT_TRUE((*engine)->errors().empty());
  std::set<std::string> got, want;
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    got.insert(f.ToString());
  }
  for (const Fact& f : (*reference)->AliveFacts(Intern("t"))) {
    want.insert(f.ToString());
  }
  EXPECT_EQ(got, want);
  EXPECT_GT(net.stats().TotalMessages(), 0u);
}

// --- planner ---

TEST(PlannerTest, StrategySelection) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  {
    PlannerOptions options;  // default row storage
    auto plan = CompilePlan(Parse(kJoinProgram), registry, options);
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (const DeltaPlan& d : plan->deltas) {
      EXPECT_EQ(d.strategy, JoinStrategy::kColumnSweep);
    }
  }
  {
    PlannerOptions options;
    options.default_storage = StoragePolicy::kBroadcast;
    auto plan = CompilePlan(Parse(kJoinProgram), registry, options);
    ASSERT_TRUE(plan.ok());
    for (const DeltaPlan& d : plan->deltas) {
      EXPECT_EQ(d.strategy, JoinStrategy::kLocalOnly);
    }
  }
  {
    PlannerOptions options;
    options.default_storage = StoragePolicy::kLocal;
    auto plan = CompilePlan(Parse(kJoinProgram), registry, options);
    ASSERT_TRUE(plan.ok());
    for (const DeltaPlan& d : plan->deltas) {
      EXPECT_EQ(d.strategy, JoinStrategy::kSerpentine);
    }
  }
  {
    PlannerOptions options;
    options.default_storage = StoragePolicy::kCentroid;
    auto plan = CompilePlan(Parse(kJoinProgram), registry, options);
    ASSERT_TRUE(plan.ok());
    for (const DeltaPlan& d : plan->deltas) {
      EXPECT_EQ(d.strategy, JoinStrategy::kCentroid);
    }
  }
  {
    auto plan = CompilePlan(Parse(kLogicJ), registry, PlannerOptions{});
    ASSERT_TRUE(plan.ok()) << plan.status();
    for (const DeltaPlan& d : plan->deltas) {
      EXPECT_EQ(d.strategy, JoinStrategy::kLocalRoute)
          << d.ToString(plan->program);
    }
  }
}

TEST(PlannerTest, RejectsUnstratified) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  auto plan = CompilePlan(Parse("win(X) :- move(X, Y), NOT win(Y)."),
                          registry, PlannerOptions{});
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST(PlannerTest, CompilesSingleSourceAggregates) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  auto plan = CompilePlan(Parse("m(G, max(X)) :- v(G, X, N)."), registry,
                          PlannerOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->aggregates.size(), 1u);
  EXPECT_EQ(plan->aggregates[0].kind, AggKind::kMax);
  EXPECT_EQ(plan->aggregates[0].agg_position, 1u);
  EXPECT_TRUE(plan->deltas.empty());  // aggregate rules skip join plans

  // Aggregates over multi-literal bodies stay unsupported.
  auto multi = CompilePlan(Parse("m(max(X)) :- a(X, Y), b(Y, Z)."), registry,
                           PlannerOptions{});
  EXPECT_EQ(multi.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace deduce
