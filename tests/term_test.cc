#include "deduce/datalog/term.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "deduce/datalog/arena.h"
#include "deduce/datalog/fact.h"
#include "deduce/datalog/value.h"

namespace deduce {
namespace {

TEST(ValueTest, IntBasics) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToString(), "42");
  EXPECT_EQ(v, Value::Int(42));
  EXPECT_NE(v, Value::Int(43));
}

TEST(ValueTest, DoubleBasics) {
  Value v = Value::Double(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
  EXPECT_EQ(v, Value::Double(2.5));
}

TEST(ValueTest, IntAndDoubleAreDistinctValues) {
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  // ...but compare numerically equal.
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.0)), 0);
}

TEST(ValueTest, SymbolInterning) {
  Value a = Value::Symbol("enemy");
  Value b = Value::Symbol("enemy");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.symbol(), b.symbol());
  EXPECT_NE(a, Value::Symbol("friendly"));
}

TEST(ValueTest, OrderNumbersBeforeSymbols) {
  EXPECT_LT(Value::Int(1000).Compare(Value::Symbol("a")), 0);
  EXPECT_GT(Value::Symbol("a").Compare(Value::Double(1e9)), 0);
  EXPECT_LT(Value::Symbol("apple").Compare(Value::Symbol("banana")), 0);
}

TEST(ValueTest, SymbolPrinting) {
  EXPECT_EQ(Value::Symbol("enemy").ToString(), "enemy");
  EXPECT_EQ(Value::Symbol("Hello world").ToString(), "\"Hello world\"");
  EXPECT_EQ(Value::Symbol("").ToString(), "\"\"");
}

TEST(ValueTest, DoublePrintingRoundTrips) {
  EXPECT_EQ(Value::Double(1.0).ToString(), "1.0");
  std::string s = Value::Double(0.1).ToString();
  EXPECT_EQ(std::stod(s), 0.1);
}

TEST(TermTest, ConstantsAndVariables) {
  Term i = Term::Int(7);
  EXPECT_TRUE(i.is_constant());
  EXPECT_TRUE(i.is_ground());
  Term v = Term::Var("X");
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_ground());
  EXPECT_EQ(v.ToString(), "X");
  EXPECT_EQ(v, Term::Var("X"));
  EXPECT_NE(v, Term::Var("Y"));
}

TEST(TermTest, FunctionGroundness) {
  Term f = Term::Function("f", {Term::Int(1), Term::Var("X")});
  EXPECT_TRUE(f.is_function());
  EXPECT_FALSE(f.is_ground());
  Term g = Term::Function("f", {Term::Int(1), Term::Int(2)});
  EXPECT_TRUE(g.is_ground());
  EXPECT_EQ(g.ToString(), "f(1, 2)");
}

TEST(TermTest, EqualityIsStructural) {
  Term a = Term::Function("f", {Term::Int(1), Term::Sym("x")});
  Term b = Term::Function("f", {Term::Int(1), Term::Sym("x")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, Term::Function("g", {Term::Int(1), Term::Sym("x")}));
  EXPECT_NE(a, Term::Function("f", {Term::Int(1)}));
}

TEST(TermTest, ListConstruction) {
  Term l = Term::MakeList({Term::Int(1), Term::Int(2), Term::Int(3)});
  EXPECT_TRUE(l.is_cons());
  auto elems = l.AsListElements();
  ASSERT_TRUE(elems.has_value());
  ASSERT_EQ(elems->size(), 3u);
  EXPECT_EQ((*elems)[0], Term::Int(1));
  EXPECT_EQ(l.ToString(), "[1, 2, 3]");
}

TEST(TermTest, EmptyList) {
  Term nil = Term::Nil();
  EXPECT_TRUE(nil.is_nil());
  auto elems = nil.AsListElements();
  ASSERT_TRUE(elems.has_value());
  EXPECT_TRUE(elems->empty());
  EXPECT_EQ(nil.ToString(), "[]");
}

TEST(TermTest, ImproperListPrints) {
  Term l = Term::Cons(Term::Int(1), Term::Var("T"));
  EXPECT_FALSE(l.AsListElements().has_value());
  EXPECT_EQ(l.ToString(), "[1 | T]");
}

TEST(TermTest, ListWithTailVariable) {
  Term l = Term::MakeList({Term::Int(1), Term::Int(2)}, Term::Var("T"));
  EXPECT_EQ(l.ToString(), "[1, 2 | T]");
  EXPECT_FALSE(l.is_ground());
}

TEST(TermTest, CollectVariables) {
  Term t = Term::Function(
      "f", {Term::Var("X"), Term::Function("g", {Term::Var("Y"),
                                                 Term::Var("X")})});
  std::vector<SymbolId> vars;
  t.CollectVariables(&vars);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], Intern("X"));
  EXPECT_EQ(vars[1], Intern("Y"));
  EXPECT_EQ(vars[2], Intern("X"));
}

TEST(TermTest, ContainsVariable) {
  Term t = Term::Function("f", {Term::Var("X"), Term::Int(1)});
  EXPECT_TRUE(t.ContainsVariable(Intern("X")));
  EXPECT_FALSE(t.ContainsVariable(Intern("Z")));
}

TEST(TermTest, SizeCountsNodes) {
  EXPECT_EQ(Term::Int(1).Size(), 1u);
  Term t = Term::Function("f", {Term::Int(1), Term::Function("g", {})});
  EXPECT_EQ(t.Size(), 3u);
}

TEST(TermTest, CompareTotalOrder) {
  // constants < variables < functions
  EXPECT_LT(Term::Int(5).Compare(Term::Var("A")), 0);
  EXPECT_LT(Term::Var("A").Compare(Term::Function("f", {})), 0);
  EXPECT_LT(Term::Function("f", {Term::Int(1)})
                .Compare(Term::Function("f", {Term::Int(2)})),
            0);
}

TEST(TermTest, HashDistribution) {
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(Term::Int(i).Hash());
  }
  EXPECT_GT(hashes.size(), 990u);
}

TEST(TermTest, UsableInHashSet) {
  std::unordered_set<Term, TermHash> set;
  set.insert(Term::Int(1));
  set.insert(Term::Int(1));
  set.insert(Term::Sym("a"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FactArenaTest, InterningDedupsByContent) {
  FactArena arena(FactArena::Mode::kIntern);
  Fact a = arena.MakeFact(Intern("r"), {Term::Int(1), Term::Int(2)});
  Fact b = arena.MakeFact(Intern("r"), {Term::Int(1), Term::Int(2)});
  Fact c = arena.MakeFact(Intern("r"), {Term::Int(1), Term::Int(3)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Dedup is identity, not just equality: both facts share one rep.
  EXPECT_EQ(a.weak_rep().lock().get(), b.weak_rep().lock().get());
  FactArena::Stats st = arena.stats();
  EXPECT_EQ(st.facts, 2u);
  EXPECT_EQ(st.hits, 1u);
}

TEST(FactArenaTest, ResetKeepsLiveFactsAndFreesOrphanedChunks) {
  // Live facts alias their chunk, so Reset frees only chunks with no
  // survivors. Reading the kept fact after Reset is the use-after-free
  // probe this test exists for (run under ASan in the sanitizer job).
  FactArena arena(FactArena::Mode::kIntern);
  Fact kept = arena.MakeFact(Intern("keep"), {Term::Int(7)});
  std::weak_ptr<const void> kept_rep = kept.weak_rep();
  std::weak_ptr<const void> dropped_rep;
  {
    Fact dropped = arena.MakeFact(Intern("drop"), {Term::Int(8)});
    dropped_rep = dropped.weak_rep();
  }
  arena.Reset();
  EXPECT_FALSE(kept_rep.expired());
  EXPECT_EQ(kept.ToString(), "keep(7)");
  EXPECT_EQ(kept.StableHash(),
            FactArena::Global()
                .MakeFact(Intern("keep"), {Term::Int(7)})
                .StableHash());
  // The dropped fact shared the kept fact's chunk, so its control block
  // survives until the last survivor goes; dropping the survivor frees it.
  kept = Fact();
  EXPECT_TRUE(kept_rep.expired());
  EXPECT_TRUE(dropped_rep.expired());
}

TEST(FactArenaTest, ConcurrentInterningIsValueDeterministic) {
  // Parallel trials intern through the shared arena concurrently.
  // Interning affects only object identity, so whatever thread wins the
  // race, every returned fact must carry the serially-computed value and
  // stable hash, and the rep count must equal the distinct-fact count.
  FactArena arena(FactArena::Mode::kIntern);
  constexpr int kThreads = 4;
  constexpr int kFacts = 500;
  SymbolId pred = Intern("cc");
  std::vector<uint64_t> expected;
  for (int i = 0; i < kFacts; ++i) {
    expected.push_back(
        Fact(pred, {Term::Int(i % 97), Term::Int(i)}).StableHash());
  }
  std::vector<std::vector<uint64_t>> got(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kFacts; ++i) {
        got[static_cast<size_t>(w)].push_back(
            arena.MakeFact(pred, {Term::Int(i % 97), Term::Int(i)})
                .StableHash());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(got[static_cast<size_t>(w)], expected);
  }
  FactArena::Stats st = arena.stats();
  EXPECT_EQ(st.facts, static_cast<uint64_t>(kFacts));
  EXPECT_EQ(st.hits, static_cast<uint64_t>((kThreads - 1) * kFacts));
}

}  // namespace
}  // namespace deduce
