#include "deduce/engine/regions.h"

#include <gtest/gtest.h>

#include <set>

#include "deduce/common/rng.h"

namespace deduce {
namespace {

/// Parameterized over topologies: the GPA correctness property (§III-A:
/// "every storage region intersects with every join-computation region")
/// must hold for each.
struct TopoCase {
  std::string name;
  std::function<Topology()> build;
};

class RegionPropertyTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(RegionPropertyTest, EveryVerticalPathIntersectsEveryHorizontalPath) {
  Topology topo = GetParam().build();
  RegionMapper regions(&topo);
  for (int u = 0; u < topo.node_count(); ++u) {
    std::vector<NodeId> vertical = regions.VerticalPath(u);
    std::set<NodeId> vset(vertical.begin(), vertical.end());
    for (int v = 0; v < topo.node_count(); ++v) {
      const std::vector<NodeId>& horizontal = regions.HorizontalPath(v);
      bool intersects = false;
      for (NodeId h : horizontal) {
        if (vset.count(h)) {
          intersects = true;
          break;
        }
      }
      EXPECT_TRUE(intersects)
          << "vertical path of node " << u
          << " misses horizontal path of node " << v;
    }
  }
}

TEST_P(RegionPropertyTest, HorizontalPathsPartitionTheNetwork) {
  Topology topo = GetParam().build();
  RegionMapper regions(&topo);
  std::set<NodeId> covered;
  for (int v = 0; v < topo.node_count(); ++v) {
    const std::vector<NodeId>& path = regions.HorizontalPath(v);
    // A node's horizontal path contains the node itself.
    EXPECT_NE(std::find(path.begin(), path.end(), v), path.end());
    covered.insert(path.begin(), path.end());
    // Same band => same path.
    for (NodeId other : path) {
      EXPECT_EQ(regions.BandOf(other), regions.BandOf(v));
    }
  }
  EXPECT_EQ(covered.size(), static_cast<size_t>(topo.node_count()));
}

TEST_P(RegionPropertyTest, SerpentineVisitsEveryNodeOnce) {
  Topology topo = GetParam().build();
  RegionMapper regions(&topo);
  std::vector<NodeId> path = regions.SerpentinePath();
  EXPECT_EQ(path.size(), static_cast<size_t>(topo.node_count()));
  std::set<NodeId> unique(path.begin(), path.end());
  EXPECT_EQ(unique.size(), path.size());
}

TEST_P(RegionPropertyTest, CentroidIsAValidNode) {
  Topology topo = GetParam().build();
  RegionMapper regions(&topo);
  NodeId c = regions.CentroidNode();
  EXPECT_GE(c, 0);
  EXPECT_LT(c, topo.node_count());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, RegionPropertyTest,
    ::testing::Values(
        TopoCase{"grid4", [] { return Topology::Grid(4); }},
        TopoCase{"grid7", [] { return Topology::Grid(7); }},
        TopoCase{"line9", [] { return Topology::Line(9); }},
        TopoCase{"single", [] { return Topology::Grid(1); }},
        TopoCase{"rgg30",
                 [] {
                   Rng rng(12);
                   return Topology::RandomGeometric(30, 8, 8, 2.5, &rng);
                 }},
        TopoCase{"rgg77",
                 [] {
                   Rng rng(99);
                   return Topology::RandomGeometric(77, 12, 12, 2.5, &rng);
                 }}),
    [](const ::testing::TestParamInfo<TopoCase>& info) {
      return info.param.name;
    });

TEST(RegionMapperTest, GridRowsAreBands) {
  Topology topo = Topology::Grid(5);
  RegionMapper regions(&topo);
  EXPECT_EQ(regions.band_count(), 5);
  // Row q holds nodes q*5..q*5+4 in x order.
  const std::vector<NodeId>& row2 = regions.HorizontalPath(topo.GridNode(3, 2));
  EXPECT_EQ(row2, (std::vector<NodeId>{10, 11, 12, 13, 14}));
}

TEST(RegionMapperTest, GridVerticalPathIsTheColumn) {
  Topology topo = Topology::Grid(5);
  RegionMapper regions(&topo);
  std::vector<NodeId> col = regions.VerticalPath(topo.GridNode(3, 1));
  EXPECT_EQ(col, (std::vector<NodeId>{3, 8, 13, 18, 23}));
}

TEST(RegionMapperTest, GridCentroidIsCentral) {
  Topology topo = Topology::Grid(5);
  RegionMapper regions(&topo);
  EXPECT_EQ(regions.CentroidNode(), topo.GridNode(2, 2));
}

TEST(RegionMapperTest, BandPeersAreNearestFirst) {
  Topology topo = Topology::Grid(4);
  RegionMapper regions(&topo);
  // Band y=2 in x order is (0,2)..(3,2). Peers of (1,2): the two
  // distance-1 neighbors tie and keep band x-order, then (3,2).
  EXPECT_EQ(regions.BandPeers(topo.GridNode(1, 2)),
            (std::vector<NodeId>{topo.GridNode(0, 2), topo.GridNode(2, 2),
                                 topo.GridNode(3, 2)}));
  // A band edge member has all peers on one side.
  EXPECT_EQ(regions.BandPeers(topo.GridNode(0, 1)),
            (std::vector<NodeId>{topo.GridNode(1, 1), topo.GridNode(2, 1),
                                 topo.GridNode(3, 1)}));
  // Single-node "band": no peers.
  Topology single = Topology::Grid(1);
  RegionMapper one(&single);
  EXPECT_TRUE(one.BandPeers(0).empty());
}

TEST(RegionMapperTest, GridSerpentineAlternates) {
  Topology topo = Topology::Grid(3);
  RegionMapper regions(&topo);
  EXPECT_EQ(regions.SerpentinePath(),
            (std::vector<NodeId>{0, 1, 2, 5, 4, 3, 6, 7, 8}));
}

}  // namespace
}  // namespace deduce
