// Shared helpers for the test binaries.

#ifndef DEDUCE_TESTS_TEST_UTIL_H_
#define DEDUCE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>

namespace deduce {

/// Derives a deterministic per-test RNG seed from `base` and the
/// DEDUCE_TEST_SEED environment variable, so CI can sweep the
/// stochastic tests (loss, jitter, churn) across several seeds without
/// touching the sources. Unset/empty/garbage => `base` unchanged, which
/// keeps plain local runs byte-for-byte reproducible.
inline uint64_t TestSeed(uint64_t base) {
  const char* env = std::getenv("DEDUCE_TEST_SEED");
  if (env == nullptr || *env == '\0') return base;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return base;
  return base + 1'000'003 * static_cast<uint64_t>(v);
}

}  // namespace deduce

#endif  // DEDUCE_TESTS_TEST_UTIL_H_
