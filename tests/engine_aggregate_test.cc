// Distributed incremental aggregates (AggregatePlan): per-group folding at
// home nodes with re-emission on change, checked against centralized
// evaluation of the same aggregate rules.

#include <gtest/gtest.h>

#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "deduce/eval/seminaive.h"

namespace deduce {
namespace {

LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  return link;
}

constexpr char kProgram[] = R"(
  .decl temp(region, celsius, n) input.
  maxt(R, max(C)) :- temp(R, C, N).
  cnt(R, count(C)) :- temp(R, C, N).
  hot(R, count(C)) :- temp(R, C, N), C > 30.
)";

std::set<std::string> Facts(const std::vector<Fact>& v) {
  std::set<std::string> out;
  for (const Fact& f : v) out.insert(f.ToString());
  return out;
}

TEST(EngineAggregateTest, GroupedMaxCountAndFilteredCount) {
  auto program = ParseProgram(kProgram);
  ASSERT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), 3);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  struct Reading {
    NodeId node;
    const char* region;
    int celsius;
  };
  SimTime t = 10'000;
  for (const Reading& r : std::vector<Reading>{{0, "north", 20},
                                               {1, "north", 35},
                                               {5, "north", 28},
                                               {10, "south", 40},
                                               {15, "south", 31}}) {
    net.sim().RunUntil(t);
    ASSERT_TRUE((*engine)
                    ->Inject(r.node, StreamOp::kInsert,
                             Fact(Intern("temp"),
                                  {Term::Sym(r.region), Term::Int(r.celsius),
                                   Term::Int(r.node)}))
                    .ok());
    t += 100'000;
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("maxt"))),
            (std::set<std::string>{"maxt(north, 35)", "maxt(south, 40)"}));
  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("cnt"))),
            (std::set<std::string>{"cnt(north, 3)", "cnt(south, 2)"}));
  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("hot"))),
            (std::set<std::string>{"hot(north, 1)", "hot(south, 2)"}));
}

TEST(EngineAggregateTest, DeletionLowersAggregate) {
  auto program = ParseProgram(kProgram);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(4), ExactLink(), 4);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok());

  Fact peak(Intern("temp"), {Term::Sym("north"), Term::Int(50), Term::Int(2)});
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)
                  ->Inject(0, StreamOp::kInsert,
                           Fact(Intern("temp"), {Term::Sym("north"),
                                                 Term::Int(22), Term::Int(0)}))
                  .ok());
  net.sim().RunUntil(150'000);
  ASSERT_TRUE((*engine)->Inject(2, StreamOp::kInsert, peak).ok());
  net.sim().Run();
  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("maxt"))),
            (std::set<std::string>{"maxt(north, 50)"}));

  // Deleting the peak reverts the max to the remaining reading.
  net.sim().RunUntil(net.sim().now() + 100'000);
  ASSERT_TRUE((*engine)->Inject(2, StreamOp::kDelete, peak).ok());
  net.sim().Run();
  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("maxt"))),
            (std::set<std::string>{"maxt(north, 22)"}));

  // Deleting the last reading removes the group entirely.
  net.sim().RunUntil(net.sim().now() + 100'000);
  ASSERT_TRUE((*engine)
                  ->Inject(0, StreamOp::kDelete,
                           Fact(Intern("temp"), {Term::Sym("north"),
                                                 Term::Int(22), Term::Int(0)}))
                  .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->ResultFacts(Intern("maxt")).empty());
  ASSERT_TRUE((*engine)->stats().errors.empty());
}

TEST(EngineAggregateTest, MatchesCentralizedOnRandomWorkload) {
  auto program = ParseProgram(kProgram);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(5), ExactLink(), 5);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok());

  Rng rng(77);
  std::vector<std::pair<NodeId, Fact>> alive;
  std::vector<Fact> alive_facts;
  SimTime t = 10'000;
  const char* regions[] = {"north", "south", "east"};
  for (int i = 0; i < 40; ++i, t += 120'000) {
    net.sim().RunUntil(t);
    if (!alive.empty() && rng.Bernoulli(0.3)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      ASSERT_TRUE(
          (*engine)
              ->Inject(alive[k].first, StreamOp::kDelete, alive[k].second)
              .ok());
      alive.erase(alive.begin() + static_cast<long>(k));
    } else {
      NodeId node = static_cast<NodeId>(rng.Uniform(0, 24));
      Fact f(Intern("temp"), {Term::Sym(regions[rng.Uniform(0, 2)]),
                              Term::Int(rng.Uniform(10, 45)), Term::Int(i)});
      ASSERT_TRUE((*engine)->Inject(node, StreamOp::kInsert, f).ok());
      alive.emplace_back(node, f);
    }
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  for (const auto& [node, fact] : alive) alive_facts.push_back(fact);
  auto expected = EvaluateProgram(*program, alive_facts);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (const char* pred : {"maxt", "cnt", "hot"}) {
    std::set<std::string> want;
    for (const Fact& f : expected->Relation(Intern(pred))) {
      want.insert(f.ToString());
    }
    EXPECT_EQ(Facts((*engine)->ResultFacts(Intern(pred))), want) << pred;
  }
}

TEST(EngineAggregateTest, WindowedContributionsRetire) {
  const char* program_text = R"(
    .decl temp(region, celsius, n) input window 1000000.
    maxt(R, max(C)) :- temp(R, C, N).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(4), ExactLink(), 6);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok());

  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)
                  ->Inject(0, StreamOp::kInsert,
                           Fact(Intern("temp"), {Term::Sym("n"), Term::Int(50),
                                                 Term::Int(0)}))
                  .ok());
  // A later, cooler reading within its own window.
  net.sim().RunUntil(700'000);
  ASSERT_TRUE((*engine)
                  ->Inject(1, StreamOp::kInsert,
                           Fact(Intern("temp"), {Term::Sym("n"), Term::Int(30),
                                                 Term::Int(1)}))
                  .ok());
  net.sim().Run();
  // After quiescence both readings expired eventually; run past both
  // windows: the group is empty again.
  EXPECT_TRUE((*engine)->ResultFacts(Intern("maxt")).empty());
}

TEST(EngineAggregateTest, AggregateOverDerivedStream) {
  // Aggregate over a derived join result: t is derived, then counted.
  const char* program_text = R"(
    .decl r/3 input.
    .decl s/3 input.
    t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
    pairs(K, count(N1)) :- t(K, N1, N2).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(4), ExactLink(), 7);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  SimTime t = 10'000;
  auto inject = [&](NodeId node, const char* pred, int k, int seq) {
    net.sim().RunUntil(t);
    ASSERT_TRUE((*engine)
                    ->Inject(node, StreamOp::kInsert,
                             Fact(Intern(pred), {Term::Int(k), Term::Int(node),
                                                 Term::Int(seq)}))
                    .ok());
    t += 150'000;
  };
  inject(0, "r", 1, 0);
  inject(5, "r", 1, 1);
  inject(10, "s", 1, 2);
  inject(15, "s", 2, 3);
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];
  // t(1, 0, 10) and t(1, 5, 10): two pairs for key 1.
  EXPECT_EQ(Facts((*engine)->ResultFacts(Intern("pairs"))),
            (std::set<std::string>{"pairs(1, 2)"}));
}

TEST(EngineAggregateTest, MultiJoinAggregateRejected) {
  auto program = ParseProgram(R"(
    m(max(X)) :- a(X, Y), b(Y, Z).
  )");
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(3), ExactLink(), 8);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace deduce
