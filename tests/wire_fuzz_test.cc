// Fuzz-style robustness tests for the wire codecs: every Decode must
// survive arbitrary, truncated and bit-flipped payloads — returning an
// error Status (or a semantically-garbled but well-formed value), never
// crashing or reading out of bounds. The chaos harness corrupts payloads
// in flight (LinkFaultRule::kCorrupt), so these paths are hit routinely;
// run under ASan/UBSan to catch over-reads (the CI sanitizer job does).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "deduce/datalog/symbol.h"
#include "deduce/engine/wire.h"

namespace deduce {
namespace {

/// Deterministic xorshift64* so the fuzz corpus is identical on every run.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed ? seed : 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }
  uint8_t Byte() { return static_cast<uint8_t>(Next() & 0xff); }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

/// Decodes `msg` as its declared engine type. The return value is
/// irrelevant — the test is that this returns at all.
void DecodeByType(const Message& msg) {
  switch (msg.type) {
    case kStoreMsg:
      (void)StoreWire::Decode(msg);
      break;
    case kJoinPassMsg:
      (void)JoinPassWire::Decode(msg);
      break;
    case kResultMsg:
      (void)ResultWire::Decode(msg);
      break;
    case kAggMsg:
      (void)AggWire::Decode(msg);
      break;
    case kAckMsg:
      (void)AckWire::Decode(msg);
      break;
    case kReliableMsg:
      (void)ReliableWire::Decode(msg);
      break;
    case kDigestRequestMsg:
      (void)DigestRequestWire::Decode(msg);
      break;
    case kDigestReplyMsg:
      (void)DigestReplyWire::Decode(msg);
      break;
    case kRepairPullMsg:
      (void)RepairPullWire::Decode(msg);
      break;
    case kRepairPushMsg:
      (void)RepairPushWire::Decode(msg);
      break;
    default:
      break;
  }
  (void)PeekFinalTarget(msg);
}

Fact SampleFact() {
  return Fact(Intern("r"), {Term::Int(3), Term::Int(7), Term::Int(42)});
}

/// One well-formed frame of every engine message type, with every
/// variable-length section populated.
std::vector<Message> SampleFrames() {
  std::vector<Message> frames;

  StoreWire store;
  store.final_target = 5;
  store.pred = Intern("r");
  store.fact = SampleFact();
  store.id = TupleId{2, 1000, 1};
  store.gen_ts = 1234;
  store.deletion = true;
  store.del_ts = 2345;
  store.path_remaining = {6, 7, 8};
  frames.push_back(store.Encode());

  JoinPassWire pass;
  pass.final_target = 3;
  pass.delta_index = 1;
  pass.removal = true;
  pass.update_ts = 999;
  pass.update_id = TupleId{1, 999, 0};
  pass.pass_index = 2;
  pass.path_remaining = {4, 5};
  PartialWire partial;
  partial.matched_mask = 0x3;
  partial.bindings = {{Intern("X"), Term::Int(9)},
                      {Intern("Y"), Term::Sym("hot")}};
  partial.support = {{0, TupleId{1, 999, 0}}, {1, TupleId{2, 998, 1}}};
  pass.partials = {partial};
  pass.degraded = true;
  frames.push_back(pass.Encode());

  ResultWire result;
  result.final_target = 9;
  result.pred = Intern("t");
  result.fact = SampleFact();
  result.removal = false;
  result.rule_id = 0;
  result.support = {TupleId{1, 999, 0}, TupleId{2, 998, 1}};
  result.update_ts = 999;
  frames.push_back(result.Encode());

  AggWire agg;
  agg.final_target = 4;
  agg.plan_index = 0;
  agg.group = {Term::Int(1), Term::Sym("region")};
  agg.value = Term::Int(31);
  agg.contributor = TupleId{3, 500, 2};
  agg.update_ts = 500;
  frames.push_back(agg.Encode());

  AckWire ack;
  ack.final_target = 1;
  ack.acker = 2;
  ack.seq = 77;
  frames.push_back(ack.Encode());

  ReliableWire rel;
  rel.final_target = 6;
  rel.origin = 0;
  rel.seq = 12;
  rel.inner_type = kStoreMsg;
  rel.inner_payload = store.Encode().payload;
  frames.push_back(rel.Encode());

  DigestRequestWire dreq;
  dreq.final_target = 2;
  dreq.requester = 3;
  dreq.round = 1;
  dreq.anti_entropy = true;
  frames.push_back(dreq.Encode());

  DigestReplyWire drep;
  drep.final_target = 3;
  drep.replier = 2;
  drep.round = 1;
  drep.digests = {{Intern("r"), 4, 0xdeadbeef}, {Intern("s"), 2, 0xfeed}};
  frames.push_back(drep.Encode());

  RepairPullWire pull;
  pull.final_target = 2;
  pull.requester = 3;
  pull.round = 1;
  pull.reverse = false;
  pull.preds = {Intern("r"), Intern("s")};
  pull.known = {{Intern("r"), TupleId{1, 999, 0}, true, false}};
  frames.push_back(pull.Encode());

  RepairPushWire push;
  push.final_target = 3;
  push.replier = 2;
  push.round = 1;
  RepairPushWire::Entry entry;
  entry.pred = Intern("r");
  entry.fact = SampleFact();
  entry.id = TupleId{1, 999, 0};
  entry.gen_ts = 999;
  entry.have_insert = true;
  entry.has_del = true;
  entry.del_ts = 1500;
  push.entries = {entry};
  frames.push_back(push.Encode());

  return frames;
}

TEST(WireFuzzTest, EveryTruncationSurvives) {
  for (const Message& frame : SampleFrames()) {
    for (size_t len = 0; len < frame.payload.size(); ++len) {
      Message cut = frame;
      cut.payload.resize(len);
      DecodeByType(cut);  // Must not crash or over-read.
    }
  }
}

TEST(WireFuzzTest, EmptyPayloadIsAnError) {
  for (const Message& frame : SampleFrames()) {
    Message empty = frame;
    empty.payload.clear();
    EXPECT_FALSE(PeekFinalTarget(empty).ok());
  }
}

TEST(WireFuzzTest, EverySingleByteCorruptionSurvives) {
  for (const Message& frame : SampleFrames()) {
    for (size_t pos = 0; pos < frame.payload.size(); ++pos) {
      for (uint8_t bit = 0; bit < 8; ++bit) {
        Message bad = frame;
        bad.payload[pos] ^= static_cast<uint8_t>(1u << bit);
        DecodeByType(bad);  // Must not crash or over-read.
      }
    }
  }
}

TEST(WireFuzzTest, RandomPayloadsSurviveAllTypes) {
  FuzzRng rng(0x5eed);
  for (int iter = 0; iter < 2000; ++iter) {
    Message msg;
    msg.src = 0;
    msg.dst = 1;
    msg.type = static_cast<uint16_t>(rng.Below(12));  // incl. unknown types
    msg.payload.resize(rng.Below(96));
    for (uint8_t& b : msg.payload) b = rng.Byte();
    DecodeByType(msg);  // Must not crash or over-read.
  }
}

TEST(WireFuzzTest, RandomMutationsOfValidFramesSurvive) {
  FuzzRng rng(0xc0ffee);
  std::vector<Message> frames = SampleFrames();
  for (int iter = 0; iter < 2000; ++iter) {
    Message bad = frames[rng.Below(frames.size())];
    size_t flips = 1 + rng.Below(4);
    for (size_t i = 0; i < flips && !bad.payload.empty(); ++i) {
      bad.payload[rng.Below(bad.payload.size())] ^= rng.Byte();
    }
    if (rng.Below(4) == 0 && !bad.payload.empty()) {
      bad.payload.resize(rng.Below(bad.payload.size()));
    }
    DecodeByType(bad);  // Must not crash or over-read.
  }
}

TEST(WireFuzzTest, ChecksumRoundTripAndTamperDetection) {
  for (const Message& frame : SampleFrames()) {
    Message sealed = frame;
    SealFrame(&sealed);
    ASSERT_EQ(sealed.payload.size(), frame.payload.size() + 4);
    // PeekFinalTarget still works on a sealed frame.
    EXPECT_TRUE(PeekFinalTarget(sealed).ok());

    Message verify = sealed;
    EXPECT_TRUE(CheckAndStripFrame(&verify));
    EXPECT_EQ(verify.payload, frame.payload);

    // Any single-bit flip anywhere in the sealed frame must be caught.
    for (size_t pos = 0; pos < sealed.payload.size(); ++pos) {
      Message bad = sealed;
      bad.payload[pos] ^= 0x40;
      EXPECT_FALSE(CheckAndStripFrame(&bad));
    }
  }
}

TEST(WireFuzzTest, ChecksumRejectsShortFrames) {
  for (size_t len = 0; len < 4; ++len) {
    Message msg;
    msg.payload.assign(len, 0xab);
    EXPECT_FALSE(CheckAndStripFrame(&msg));
  }
}

}  // namespace
}  // namespace deduce
