#include <gtest/gtest.h>

#include <set>

#include "deduce/routing/geo_hash.h"
#include "deduce/routing/routing.h"

namespace deduce {
namespace {

TEST(RoutingTest, GridNextHopMakesProgress) {
  Topology t = Topology::Grid(5);
  RoutingTable rt(&t);
  NodeId from = t.GridNode(0, 0);
  NodeId dest = t.GridNode(4, 4);
  EXPECT_EQ(rt.HopDistance(from, dest), 8);
  NodeId cur = from;
  int hops = 0;
  while (cur != dest) {
    NodeId next = rt.NextHop(cur, dest);
    ASSERT_NE(next, kNoNode);
    EXPECT_EQ(rt.HopDistance(next, dest), rt.HopDistance(cur, dest) - 1);
    cur = next;
    ++hops;
  }
  EXPECT_EQ(hops, 8);
}

TEST(RoutingTest, RouteReturnsFullPath) {
  Topology t = Topology::Line(5);
  RoutingTable rt(&t);
  std::vector<NodeId> route = rt.Route(0, 4);
  EXPECT_EQ(route, (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_TRUE(rt.Route(2, 2).empty());
}

TEST(RoutingTest, GeoNextHopGreedyOnGrid) {
  Topology t = Topology::Grid(5);
  RoutingTable rt(&t);
  NodeId cur = t.GridNode(0, 0);
  NodeId dest = t.GridNode(3, 2);
  int guard = 30;
  while (cur != dest && guard-- > 0) {
    NodeId next = rt.GeoNextHop(cur, dest);
    ASSERT_NE(next, kNoNode);
    // Greedy: strictly closer each hop.
    EXPECT_LT(t.location(next).DistanceTo(t.location(dest)),
              t.location(cur).DistanceTo(t.location(dest)));
    cur = next;
  }
  EXPECT_EQ(cur, dest);
}

TEST(RoutingTest, GeoRoutingDeliversOnRandomTopologies) {
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    Topology t = Topology::RandomGeometric(40, 10, 10, 2.5, &rng);
    if (!t.IsConnected()) continue;
    RoutingTable rt(&t);
    for (auto [a, b] : std::vector<std::pair<NodeId, NodeId>>{
             {0, 39}, {5, 20}, {39, 1}}) {
      NodeId cur = a;
      int guard = 200;
      while (cur != b && guard-- > 0) {
        NodeId next = rt.GeoNextHop(cur, b);
        ASSERT_NE(next, kNoNode);
        cur = next;
      }
      EXPECT_EQ(cur, b) << "trial " << trial;
    }
  }
}

TEST(RoutingTest, SinkTreeDepthsMatchBfs) {
  Topology t = Topology::Grid(4);
  SinkTree tree = SinkTree::Build(t, 0);
  RoutingTable rt(&t);
  for (int v = 0; v < 16; ++v) {
    EXPECT_EQ(tree.depth[static_cast<size_t>(v)], rt.HopDistance(v, 0));
    if (v != 0) {
      // Parent is one closer to the root and a neighbor.
      NodeId p = tree.parent[static_cast<size_t>(v)];
      EXPECT_TRUE(t.AreNeighbors(v, p));
      EXPECT_EQ(tree.depth[static_cast<size_t>(p)],
                tree.depth[static_cast<size_t>(v)] - 1);
    }
  }
  // Children lists are consistent.
  auto children = tree.Children();
  size_t total = 0;
  for (const auto& c : children) total += c.size();
  EXPECT_EQ(total, 15u);
}

TEST(GeoHashTest, SameFactSameHome) {
  Topology t = Topology::Grid(6);
  GeoHash gh(&t);
  Fact f(Intern("cov"), {Term::Int(3), Term::Int(9)});
  Fact g(Intern("cov"), {Term::Int(3), Term::Int(9)});
  EXPECT_EQ(gh.HomeNode(f), gh.HomeNode(g));
}

TEST(GeoHashTest, SpreadsAcrossNetwork) {
  Topology t = Topology::Grid(6);
  GeoHash gh(&t);
  std::set<NodeId> homes;
  for (int i = 0; i < 200; ++i) {
    homes.insert(gh.HomeNode(Fact(Intern("p"), {Term::Int(i)})));
  }
  // 200 distinct tuples should land on a good fraction of 36 nodes.
  EXPECT_GT(homes.size(), 20u);
}

TEST(GeoHashTest, HomeIsValidNode) {
  Rng rng(1);
  Topology t = Topology::RandomGeometric(25, 8, 8, 2.5, &rng);
  GeoHash gh(&t);
  for (int i = 0; i < 50; ++i) {
    NodeId h = gh.HomeNode(Fact(Intern("q"), {Term::Int(i)}));
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 25);
  }
}

}  // namespace
}  // namespace deduce
