// Tests for the parallel trial-execution layer (common/parallel.h) and
// the thread-safety/determinism contracts it relies on (DESIGN.md §11):
//   - ThreadPool / ParallelFor basics;
//   - RunTrials reduces in submission order and produces byte-identical
//     output to a serial run;
//   - concurrent SymbolTable interning yields exactly one id per name;
//   - per-trial MetricsRegistry instances merged in submission order equal
//     the registry a serial run would have produced;
//   - the calendar-queue Simulator replays the exact (time, insertion
//     order) event sequence of the old binary-heap scheduler on randomized
//     schedules (property test).

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "deduce/common/metrics.h"
#include "deduce/common/parallel.h"
#include "deduce/common/rng.h"
#include "deduce/common/strings.h"
#include "deduce/datalog/symbol.h"
#include "deduce/net/simulator.h"

namespace deduce {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, threads, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(RunTrialsTest, ReducesInSubmissionOrder) {
  // Trials finish in scrambled order (later indices do less work), but the
  // reduction must still see 0, 1, 2, ... n-1.
  constexpr size_t kN = 64;
  std::vector<size_t> reduced;
  RunTrials(
      kN, 4,
      [](size_t i) {
        // Busy-work inversely proportional to the index so high indices
        // complete first.
        volatile uint64_t x = 0;
        for (size_t k = 0; k < (kN - i) * 20'000; ++k) x = x + k;
        return i;
      },
      [&reduced](size_t i, size_t result) {
        EXPECT_EQ(i, result);
        reduced.push_back(result);
      });
  ASSERT_EQ(reduced.size(), kN);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(reduced[i], i);
}

/// A deterministic "trial": a seeded mini simulation whose reduced output
/// is a string — the stand-in for a bench table row + JSON record.
std::string SeededTrial(size_t i) {
  Rng rng(1000 + i);
  Simulator sim;
  uint64_t checksum = 0;
  int fired = 0;
  for (int k = 0; k < 50; ++k) {
    SimTime t = rng.Uniform(0, 2'000'000);
    sim.ScheduleAt(t, [&checksum, &fired, t, k] {
      checksum = checksum * 1099511628211ull + static_cast<uint64_t>(t) + k;
      ++fired;
    });
  }
  sim.Run();
  return StrFormat("trial=%zu fired=%d checksum=%llu", i, fired,
                   static_cast<unsigned long long>(checksum));
}

TEST(RunTrialsTest, ParallelOutputIsByteIdenticalToSerial) {
  constexpr size_t kN = 32;
  auto run = [](int threads) {
    std::string out;
    RunTrials(
        kN, threads, [](size_t i) { return SeededTrial(i); },
        [&out](size_t i, std::string&& result) {
          (void)i;
          out += result;
          out += '\n';
        });
    return out;
  };
  std::string serial = run(1);
  std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, run(7));
}

TEST(SymbolTableTest, ConcurrentInterningYieldsOneIdPerName) {
  constexpr int kThreads = 8;
  constexpr int kShared = 64;
  constexpr int kPrivate = 64;
  // Per-thread view of name -> id, checked for global consistency after.
  std::vector<std::map<std::string, SymbolId>> seen(kThreads);
  ParallelFor(kThreads, kThreads, [&seen](size_t t) {
    for (int round = 0; round < 20; ++round) {
      for (int k = 0; k < kShared; ++k) {
        std::string name = StrFormat("par_shared_%d", k);
        seen[t][name] = Intern(name);
      }
      for (int k = 0; k < kPrivate; ++k) {
        std::string name = StrFormat("par_t%zu_%d", t, k);
        seen[t][name] = Intern(name);
      }
    }
  });
  // All threads agree on the id of every shared name, and every id
  // round-trips through Name().
  std::map<std::string, SymbolId> global;
  std::set<SymbolId> ids;
  for (const auto& per_thread : seen) {
    for (const auto& [name, id] : per_thread) {
      auto [it, inserted] = global.emplace(name, id);
      if (!inserted) {
        EXPECT_EQ(it->second, id) << name;
      }
      EXPECT_EQ(SymbolName(id), name);
      ids.insert(id);
    }
  }
  EXPECT_EQ(global.size(), ids.size());  // distinct names <-> distinct ids
  EXPECT_EQ(global.size(),
            static_cast<size_t>(kShared + kThreads * kPrivate));
  // Re-interning on one thread reproduces every id.
  for (const auto& [name, id] : global) EXPECT_EQ(Intern(name), id);
}

/// Deterministically fills a registry as trial `i` would.
void FillRegistry(MetricsRegistry* reg, size_t i) {
  Rng rng(77 + i);
  for (int k = 0; k < 200; ++k) {
    int node = static_cast<int>(rng.Uniform(-1, 5));
    switch (rng.Uniform(0, 2)) {
      case 0:
        reg->Add(node, "net",
                 StrFormat("ctr_%lld",
                           static_cast<long long>(rng.Uniform(0, 9))),
                 static_cast<uint64_t>(rng.Uniform(1, 100)));
        break;
      case 1:
        reg->Set(node, "engine", "gauge", rng.Uniform(-50, 50));
        break;
      default:
        reg->Observe(node, "lat", "us", rng.Uniform(0, 1 << 20));
    }
  }
}

TEST(RunTrialsTest, PerTrialRegistriesMergeToSerialResult) {
  constexpr size_t kN = 16;
  // Serial reference: one registry, trials applied in order.
  MetricsRegistry serial;
  for (size_t i = 0; i < kN; ++i) FillRegistry(&serial, i);

  // Parallel: per-trial registries, merged in submission order.
  MetricsRegistry merged;
  RunTrials(
      kN, 4,
      [](size_t i) {
        MetricsRegistry reg;
        FillRegistry(&reg, i);
        return reg;
      },
      [&merged](size_t i, MetricsRegistry&& reg) {
        (void)i;
        merged.MergeFrom(reg);
      });
  EXPECT_EQ(merged.ToJson(), serial.ToJson());
}

// ---------------------------------------------------------------------------
// Calendar queue vs. the old global binary heap: identical replay.

/// The pre-calendar-queue scheduler, kept verbatim as the ordering oracle:
/// a single std::priority_queue over (time, insertion seq).
class ReferenceHeapSimulator {
 public:
  SimTime now() const { return now_; }

  void ScheduleAt(SimTime t, std::function<void()> fn) {
    ASSERT_GE(t, now_);
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  void ScheduleAfter(SimTime delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  uint64_t Run(uint64_t max_events = UINT64_MAX) {
    uint64_t executed = 0;
    while (!queue_.empty() && executed < max_events) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    return executed;
  }

  uint64_t RunUntil(SimTime deadline) {
    uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().time <= deadline) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
};

/// Drives `sim` through a randomized schedule: a burst of root events
/// (with deliberate same-instant collisions), events that spawn children
/// at zero/short/far-future delays (the far ones exercise the calendar
/// queue's overflow path), interleaved RunUntil / bounded Run calls.
/// Returns the exact firing sequence (label, fire time).
template <typename Sim>
std::vector<std::pair<int, SimTime>> RunScenario(uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  std::vector<std::pair<int, SimTime>> fired;
  int next_label = 0;
  int spawn_budget = 400;

  std::function<void(int)> on_fire = [&](int label) {
    fired.emplace_back(label, sim.now());
    if (spawn_budget <= 0) return;
    int children = static_cast<int>(rng.Uniform(0, 2));
    for (int c = 0; c < children && spawn_budget > 0; ++c, --spawn_budget) {
      SimTime delay;
      switch (rng.Uniform(0, 4)) {
        case 0: delay = 0; break;                                // same instant
        case 1: delay = rng.Uniform(1, 900); break;              // same slot-ish
        case 2: delay = rng.Uniform(1'000, 300'000); break;      // in the ring
        case 3: delay = rng.Uniform(300'000, 500'000); break;
        default: delay = rng.Uniform(600'000'000, 900'000'000);  // overflow
      }
      int label2 = next_label++;
      sim.ScheduleAfter(delay, [&on_fire, label2] { on_fire(label2); });
    }
  };

  // Root burst: coarse time grid to force many same-instant collisions.
  for (int i = 0; i < 200; ++i) {
    SimTime t = rng.Uniform(0, 40) * 10'000;
    int label = next_label++;
    sim.ScheduleAt(t, [&on_fire, label] { on_fire(label); });
  }
  // Interleave bounded runs and deadline runs before draining fully.
  sim.Run(25);
  sim.RunUntil(rng.Uniform(0, 200'000));
  sim.Run(50);
  sim.RunUntil(rng.Uniform(200'000, 400'000));
  // Schedule a few more after the deadline advanced now_.
  for (int i = 0; i < 20; ++i) {
    SimTime t = sim.now() + rng.Uniform(0, 50'000);
    int label = next_label++;
    sim.ScheduleAt(t, [&on_fire, label] { on_fire(label); });
  }
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
  return fired;
}

TEST(SimulatorPropertyTest, CalendarMatchesReferenceHeapExactly) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto expected = RunScenario<ReferenceHeapSimulator>(seed);
    auto got = RunScenario<Simulator>(seed);
    ASSERT_EQ(expected.size(), got.size()) << "seed " << seed;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(expected[i], got[i])
          << "seed " << seed << " divergence at event " << i;
    }
  }
}

TEST(SimulatorPropertyTest, PendingCountsAgreeAcrossStructures) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(100, [&] { ++fired; });                 // active slot
  sim.ScheduleAt(5'000, [&] { ++fired; });               // ring
  sim.ScheduleAt(900'000'000, [&] { ++fired; });         // overflow
  EXPECT_EQ(sim.pending(), 3u);
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.now(), 900'000'000);
}

}  // namespace
}  // namespace deduce
