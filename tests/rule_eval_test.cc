#include "deduce/eval/rule_eval.h"

#include <gtest/gtest.h>

#include <set>

#include "deduce/datalog/analysis.h"
#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

class RuleEvalTest : public ::testing::Test {
 protected:
  RuleEvalTest() : registry_(BuiltinRegistry::Default()) {}

  void Add(const std::string& fact_text) {
    Rule r = ParseRule(fact_text + ".").value();
    db_.Insert(Fact(r.head.predicate, r.head.args));
  }

  std::set<std::string> Heads(const std::string& rule_text,
                              RuleEvalOptions opts = {}) {
    Rule rule = ParseRule(rule_text).value();
    BuiltinRegistry reg = registry_;
    Program p;  // resolve builtins: fake via a one-rule program
    EXPECT_TRUE(p.AddRule(rule).ok());
    EXPECT_TRUE(ResolveBuiltins(&p, reg).ok());
    RuleBodyEvaluator evaluator(&p.rules()[0], &registry_);
    std::set<std::string> out;
    Status st = evaluator.Evaluate(
        db_, opts,
        [&](const Subst& subst, const std::vector<MatchedFact>&) -> Status {
          auto head = evaluator.BuildHead(subst);
          EXPECT_TRUE(head.ok()) << head.status();
          out.insert(head->ToString());
          return Status::OK();
        });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  BuiltinRegistry registry_;
  Database db_;
};

TEST_F(RuleEvalTest, SimpleJoin) {
  Add("r(1, 2)");
  Add("r(2, 3)");
  Add("s(2, 9)");
  auto heads = Heads("t(X, Z) :- r(X, Y), s(Y, Z).");
  EXPECT_EQ(heads, (std::set<std::string>{"t(1, 9)"}));
}

TEST_F(RuleEvalTest, SelfJoin) {
  Add("e(1, 2)");
  Add("e(2, 3)");
  Add("e(2, 4)");
  auto heads = Heads("p(X, Z) :- e(X, Y), e(Y, Z).");
  EXPECT_EQ(heads, (std::set<std::string>{"p(1, 3)", "p(1, 4)"}));
}

TEST_F(RuleEvalTest, NegationFilters) {
  Add("n(1)");
  Add("n(2)");
  Add("bad(2)");
  auto heads = Heads("good(X) :- n(X), NOT bad(X).");
  EXPECT_EQ(heads, (std::set<std::string>{"good(1)"}));
}

TEST_F(RuleEvalTest, ComparisonsPrune) {
  Add("n(1)");
  Add("n(5)");
  Add("n(9)");
  auto heads = Heads("mid(X) :- n(X), X > 2, X < 8.");
  EXPECT_EQ(heads, (std::set<std::string>{"mid(5)"}));
}

TEST_F(RuleEvalTest, ArithmeticHead) {
  Add("n(4)");
  auto heads = Heads("double(X, X * 2 + 1) :- n(X).");
  EXPECT_EQ(heads, (std::set<std::string>{"double(4, 9)"}));
}

TEST_F(RuleEvalTest, AssignmentBindsAndInverts) {
  Add("n(10)");
  EXPECT_EQ(Heads("a(Y) :- n(X), Y = X + 5."),
            (std::set<std::string>{"a(15)"}));
  // Inversion: bound = pattern-with-arithmetic.
  EXPECT_EQ(Heads("b(Y) :- n(X), X = Y + 3."),
            (std::set<std::string>{"b(7)"}));
}

TEST_F(RuleEvalTest, ListDestructuring) {
  Add("l([1, 2, 3])");
  auto heads = Heads("ht(H, T) :- l(L), L = [H | T].");
  EXPECT_EQ(heads, (std::set<std::string>{"ht(1, [2, 3])"}));
}

TEST_F(RuleEvalTest, BuiltinPredicate) {
  Add("l([1, 2, 3])");
  Add("n(2)");
  Add("n(7)");
  auto heads = Heads("in(X) :- n(X), l(L), member(X, L).");
  EXPECT_EQ(heads, (std::set<std::string>{"in(2)"}));
}

TEST_F(RuleEvalTest, PinnedPositiveRestrictsMatches) {
  Add("r(1, 2)");
  Add("r(5, 6)");
  Add("s(2, 8)");
  Add("s(6, 9)");
  Rule rule = ParseRule("t(X, Z) :- r(X, Y), s(Y, Z).").value();
  RuleBodyEvaluator evaluator(&rule, &registry_);
  std::vector<std::pair<Fact, TupleId>> pin = {
      {Fact(Intern("r"), {Term::Int(1), Term::Int(2)}), TupleId{7, 1, 0}}};
  RuleEvalOptions opts;
  opts.pin_index = 0;
  opts.pin_facts = &pin;
  std::set<std::string> out;
  ASSERT_TRUE(evaluator
                  .Evaluate(db_, opts,
                            [&](const Subst& subst,
                                const std::vector<MatchedFact>& matched)
                                -> Status {
                              out.insert(evaluator.BuildHead(subst)->ToString());
                              // Pinned fact id is reported in the support.
                              EXPECT_EQ(matched[0].id, (TupleId{7, 1, 0}));
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(out, (std::set<std::string>{"t(1, 8)"}));
}

TEST_F(RuleEvalTest, PinnedThroughArithmetic) {
  // Pinning h1(Y, D+1) to h1(5, 3) must solve D = 2.
  Add("g(2, 5)");
  Rule rule = ParseRule("out(Y, D) :- g(D, Y), NOT h1(Y, D + 1).").value();
  RuleBodyEvaluator evaluator(&rule, &registry_);
  std::vector<std::pair<Fact, TupleId>> pin = {
      {Fact(Intern("h1"), {Term::Int(5), Term::Int(3)}), TupleId{}}};
  RuleEvalOptions opts;
  opts.pin_index = 1;  // the negated literal
  opts.pin_facts = &pin;
  std::set<std::string> out;
  ASSERT_TRUE(evaluator
                  .Evaluate(db_, opts,
                            [&](const Subst& subst,
                                const std::vector<MatchedFact>&) -> Status {
                              out.insert(evaluator.BuildHead(subst)->ToString());
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(out, (std::set<std::string>{"out(5, 2)"}));
}

TEST_F(RuleEvalTest, MaxResultsGuard) {
  for (int i = 0; i < 50; ++i) Add("n(" + std::to_string(i) + ")");
  Rule rule = ParseRule("p(X, Y) :- n(X), n(Y).").value();
  RuleBodyEvaluator evaluator(&rule, &registry_);
  RuleEvalOptions opts;
  opts.max_results = 100;
  RuleEvalStats stats;
  Status st = evaluator.Evaluate(
      db_, opts,
      [](const Subst&, const std::vector<MatchedFact>&) {
        return Status::OK();
      },
      &stats);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuleEvalTest, StatsCountProbes) {
  Add("r(1, 2)");
  Add("s(2, 3)");
  Rule rule = ParseRule("t(X, Z) :- r(X, Y), s(Y, Z).").value();
  RuleBodyEvaluator evaluator(&rule, &registry_);
  RuleEvalStats stats;
  ASSERT_TRUE(evaluator
                  .Evaluate(db_, RuleEvalOptions{},
                            [](const Subst&, const std::vector<MatchedFact>&) {
                              return Status::OK();
                            },
                            &stats)
                  .ok());
  EXPECT_GT(stats.probes, 0u);
  EXPECT_EQ(stats.emitted, 1u);
}

TEST(SolveMatchTest, ArithmeticInversions) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  struct Case {
    const char* pattern;
    int64_t ground;
    const char* var;
    int64_t expect;
  };
  for (const Case& c : std::vector<Case>{{"D + 1", 5, "D", 4},
                                         {"1 + D", 5, "D", 4},
                                         {"D - 2", 5, "D", 7},
                                         {"9 - D", 5, "D", 4}}) {
    Subst subst;
    Term pattern = ParseTerm(c.pattern).value();
    ASSERT_TRUE(SolveMatchTerm(pattern, Term::Int(c.ground), &subst, registry))
        << c.pattern;
    EXPECT_EQ(*subst.Lookup(Intern(c.var)), Term::Int(c.expect)) << c.pattern;
  }
}

TEST(SolveMatchTest, StructuralWithEvaluation) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  Subst subst;
  subst.Bind(Intern("A"), Term::Int(2));
  // loc(A + 1, Y) against loc(3, 7): A already bound evaluates to 3.
  Term pattern = ParseTerm("loc(A + 1, Y)").value();
  Term ground = ParseTerm("loc(3, 7)").value();
  ASSERT_TRUE(SolveMatchTerm(pattern, ground, &subst, registry));
  EXPECT_EQ(*subst.Lookup(Intern("Y")), Term::Int(7));
}

TEST(SolveMatchTest, MismatchFails) {
  BuiltinRegistry registry = BuiltinRegistry::Default();
  Subst subst;
  EXPECT_FALSE(SolveMatchTerm(ParseTerm("D * 2").value(), Term::Int(5),
                              &subst, registry));
  Subst subst2;
  EXPECT_FALSE(SolveMatchTerm(ParseTerm("f(X)").value(),
                              ParseTerm("g(1)").value(), &subst2, registry));
}

}  // namespace
}  // namespace deduce
