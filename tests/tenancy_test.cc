// Multi-tenant engine coverage (DESIGN.md §13): shared sub-plan dedup
// correctness against the k-independent-engines oracle, cross-tenant
// symbol-collision validation, the aggregate-state monoid laws, tenancy
// counters/metrics, the ResultWire tenant field, and degraded-bit
// isolation between tenants under overload shedding.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "deduce/eval/monoid.h"
#include "test_util.h"

namespace deduce {
namespace {

constexpr char kTwoStreamJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

// Same sub-plan, renamed head: canonicalization must recognize it as the
// two-stream join above and dedup it into an alias view.
constexpr char kRenamedJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  pairs(K, A, B) :- r(K, A, I1), s(K, B, I2).
)";

// A genuinely different plan under the same head name as kTwoStreamJoin's.
constexpr char kDifferentT[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N1) :- r(K, N1, I1).
)";

struct Workload {
  std::vector<std::pair<NodeId, Fact>> items;
};

Workload JoinWorkload(int pairs, int keys, const std::string& r = "r",
                      const std::string& s = "s") {
  Workload w;
  for (int k = 0; k < pairs; ++k) {
    w.items.emplace_back(static_cast<NodeId>(k % 9),
                         Fact(Intern(r), {Term::Int(k % keys), Term::Int(k % 9),
                                          Term::Int(2 * k)}));
    w.items.emplace_back(static_cast<NodeId>((k + 3) % 9),
                         Fact(Intern(s),
                              {Term::Int(k % keys), Term::Int((k + 3) % 9),
                               Term::Int(2 * k + 1)}));
  }
  return w;
}

std::set<std::string> FactSet(const Database& db) {
  std::set<std::string> out;
  for (SymbolId pred : db.Predicates()) {
    for (const Fact& f : db.Relation(pred)) out.insert(f.ToString());
  }
  return out;
}

/// Oracle: the program alone on its own engine and network.
std::set<std::string> IndependentRun(const std::string& program_text,
                                     const Workload& w) {
  auto program = ParseProgram(program_text);
  EXPECT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(3), LinkModel{}, TestSeed(11));
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  EXPECT_TRUE(engine.ok()) << engine.status();
  for (const auto& [node, fact] : w.items) {
    net.sim().RunUntil(net.sim().now() + 50'000);
    EXPECT_TRUE((*engine)->Inject(node, StreamOp::kInsert, fact).ok());
  }
  net.sim().Run();
  return FactSet((*engine)->ResultDatabase());
}

/// Shared run: all tenant programs on one MultiTenantEngine, the same
/// injection schedule, per-tenant result sets out.
struct SharedRun {
  std::vector<std::set<std::string>> per_tenant;
  MultiPlan multi;
  uint64_t messages = 0;
};

SharedRun SharedTenants(const std::vector<std::string>& programs,
                        const Workload& w,
                        const EngineOptions& base_options = EngineOptions{}) {
  SharedRun out;
  Network net(Topology::Grid(3), LinkModel{}, TestSeed(11));
  MultiTenantEngine mte(base_options);
  for (size_t i = 0; i < programs.size(); ++i) {
    auto program = ParseProgram(programs[i]);
    EXPECT_TRUE(program.ok()) << program.status();
    Status st = mte.AddProgram("tenant" + std::to_string(i), *program);
    EXPECT_TRUE(st.ok()) << st;
  }
  Status st = mte.Start(&net);
  EXPECT_TRUE(st.ok()) << st;
  if (!st.ok()) return out;
  for (const auto& [node, fact] : w.items) {
    net.sim().RunUntil(net.sim().now() + 50'000);
    EXPECT_TRUE(mte.Inject(node, StreamOp::kInsert, fact).ok());
  }
  mte.Run();
  for (size_t i = 0; i < programs.size(); ++i) {
    auto db = mte.ResultDatabase("tenant" + std::to_string(i));
    EXPECT_TRUE(db.ok()) << db.status();
    out.per_tenant.push_back(db.ok() ? FactSet(*db) : std::set<std::string>{});
  }
  out.multi = mte.multi_plan();
  out.messages = net.stats().TotalMessages();
  return out;
}

// --- dedup correctness vs independent engines -------------------------------

TEST(Tenancy, IdenticalTenantsMatchIndependentOracle) {
  Workload w = JoinWorkload(12, 4);
  std::set<std::string> oracle = IndependentRun(kTwoStreamJoin, w);
  ASSERT_FALSE(oracle.empty());

  SharedRun shared = SharedTenants(
      {kTwoStreamJoin, kTwoStreamJoin, kTwoStreamJoin, kTwoStreamJoin}, w);
  ASSERT_EQ(shared.per_tenant.size(), 4u);
  for (size_t i = 0; i < shared.per_tenant.size(); ++i) {
    EXPECT_EQ(shared.per_tenant[i], oracle) << "tenant " << i;
  }
  // The whole point: four identical tenants evaluate ONE sub-plan.
  EXPECT_EQ(shared.multi.subplans_requested, 4u);
  EXPECT_EQ(shared.multi.subplans_total, 1u);
  EXPECT_EQ(shared.multi.subplans_shared, 3u);
}

TEST(Tenancy, RenamedTenantReadsSharedSubplanUnderItsOwnName) {
  Workload w = JoinWorkload(10, 3);
  std::set<std::string> oracle_t = IndependentRun(kTwoStreamJoin, w);
  std::set<std::string> oracle_pairs = IndependentRun(kRenamedJoin, w);
  ASSERT_FALSE(oracle_t.empty());
  ASSERT_FALSE(oracle_pairs.empty());

  SharedRun shared = SharedTenants({kTwoStreamJoin, kRenamedJoin}, w);
  ASSERT_EQ(shared.per_tenant.size(), 2u);
  EXPECT_EQ(shared.per_tenant[0], oracle_t);
  EXPECT_EQ(shared.per_tenant[1], oracle_pairs);
  EXPECT_EQ(shared.multi.subplans_shared, 1u);
}

TEST(Tenancy, SharedOverlappingTenantsCostNoExtraMessages) {
  Workload w = JoinWorkload(12, 4);
  SharedRun one = SharedTenants({kTwoStreamJoin}, w);
  // Identical tenants fully dedup; the renamed tenant's alias view is
  // fanned out home-side, so neither adds network traffic.
  SharedRun many = SharedTenants(
      {kTwoStreamJoin, kTwoStreamJoin, kRenamedJoin}, w);
  EXPECT_EQ(many.messages, one.messages);
}

TEST(Tenancy, DisjointTenantsDoNotShare) {
  Workload wa = JoinWorkload(8, 3, "r", "s");
  Workload wb = JoinWorkload(8, 3, "ra", "sa");
  Workload both;
  both.items = wa.items;
  both.items.insert(both.items.end(), wb.items.begin(), wb.items.end());

  const char* kOther = R"(
    .decl ra/3 input.
    .decl sa/3 input.
    u(K, N1, N2) :- ra(K, N1, I1), sa(K, N2, I2).
  )";
  std::set<std::string> oracle_a = IndependentRun(kTwoStreamJoin, wa);
  std::set<std::string> oracle_b = IndependentRun(kOther, wb);

  SharedRun shared = SharedTenants({kTwoStreamJoin, kOther}, both);
  ASSERT_EQ(shared.per_tenant.size(), 2u);
  EXPECT_EQ(shared.per_tenant[0], oracle_a);
  EXPECT_EQ(shared.per_tenant[1], oracle_b);
  EXPECT_EQ(shared.multi.subplans_shared, 0u);
  EXPECT_EQ(shared.multi.subplans_total, 2u);
}

TEST(Tenancy, AggregateSubplansDedupAndMatchOracle) {
  const char* kAgg = R"(
    .decl temp/3 input.
    hot(R, count(C)) :- temp(R, C, N), C > 30.
  )";
  Workload w;
  for (int i = 0; i < 12; ++i) {
    w.items.emplace_back(static_cast<NodeId>(i % 9),
                         Fact(Intern("temp"),
                              {Term::Int(i % 3), Term::Int(20 + 2 * i),
                               Term::Int(i)}));
  }
  std::set<std::string> oracle = IndependentRun(kAgg, w);
  ASSERT_FALSE(oracle.empty());
  SharedRun shared = SharedTenants({kAgg, kAgg, kAgg}, w);
  ASSERT_EQ(shared.per_tenant.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(shared.per_tenant[i], oracle);
  EXPECT_EQ(shared.multi.subplans_shared, 2u);
}

// --- plan-time validation ---------------------------------------------------

TEST(Tenancy, StrictCrossTenantCollisionIsRejected) {
  MultiTenantEngine mte{EngineOptions{}};
  ASSERT_TRUE(
      mte.AddProgram("alice", *ParseProgram(kTwoStreamJoin)).ok());
  ASSERT_TRUE(mte.AddProgram("bob", *ParseProgram(kDifferentT)).ok());
  Network net(Topology::Grid(3), LinkModel{}, TestSeed(5));
  Status st = mte.Start(&net);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cross-tenant symbol collision"),
            std::string::npos)
      << st;
  EXPECT_NE(st.message().find("bob"), std::string::npos) << st;
}

TEST(Tenancy, NonStrictCollisionRenamesAndIsolates) {
  EngineOptions options;
  options.planner.strict_tenant_collisions = false;
  Workload w = JoinWorkload(8, 3);
  std::set<std::string> oracle_join = IndependentRun(kTwoStreamJoin, w);
  std::set<std::string> oracle_proj = IndependentRun(kDifferentT, w);

  SharedRun shared = SharedTenants({kTwoStreamJoin, kDifferentT}, w, options);
  ASSERT_EQ(shared.per_tenant.size(), 2u);
  // Each tenant sees its own `t`, under its own name, despite the clash.
  EXPECT_EQ(shared.per_tenant[0], oracle_join);
  EXPECT_EQ(shared.per_tenant[1], oracle_proj);
  EXPECT_EQ(shared.multi.subplans_shared, 0u);
}

TEST(Tenancy, EdbDeclMismatchIsAlwaysRejected) {
  const char* kArity2 = R"(
    .decl r/2 input.
    w(K) :- r(K, N).
  )";
  for (bool strict : {true, false}) {
    EngineOptions options;
    options.planner.strict_tenant_collisions = strict;
    MultiTenantEngine mte(options);
    ASSERT_TRUE(
        mte.AddProgram("alice", *ParseProgram(kTwoStreamJoin)).ok());
    ASSERT_TRUE(mte.AddProgram("bob", *ParseProgram(kArity2)).ok());
    Network net(Topology::Grid(3), LinkModel{}, TestSeed(5));
    EXPECT_FALSE(mte.Start(&net).ok()) << "strict=" << strict;
  }
}

TEST(Tenancy, DuplicateTenantNameIsRejected) {
  MultiTenantEngine mte{EngineOptions{}};
  ASSERT_TRUE(mte.AddProgram("alice", *ParseProgram(kTwoStreamJoin)).ok());
  EXPECT_FALSE(mte.AddProgram("alice", *ParseProgram(kRenamedJoin)).ok());
  EXPECT_FALSE(mte.AddProgram("", *ParseProgram(kRenamedJoin)).ok());
}

TEST(Tenancy, UnknownTenantAndPredicateAreNotFound) {
  MultiTenantEngine mte{EngineOptions{}};
  ASSERT_TRUE(mte.AddProgram("alice", *ParseProgram(kTwoStreamJoin)).ok());
  Network net(Topology::Grid(3), LinkModel{}, TestSeed(5));
  ASSERT_TRUE(mte.Start(&net).ok());
  EXPECT_FALSE(mte.ResultDatabase("nobody").ok());
  EXPECT_FALSE(mte.ResultFacts("alice", Intern("no_such_pred")).ok());
  EXPECT_TRUE(mte.ResultFacts("alice", Intern("t")).ok());
}

// --- monoid laws (every aggregate kind) -------------------------------------

const AggKind kAllKinds[] = {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                             AggKind::kMax, AggKind::kAvg};

std::vector<Term> MixedValues() {
  return {Term::Int(5),     Term::Int(-3),    Term::Int(7),
          Term::Int(5),     Term::Int(100),   Term::Int(0),
          Term::Int(-3),    Term::Int(42),    Term::Int(9),
          Term::Int(-3)};
}

std::vector<Term> RealValues() {
  return {Term::Real(1.5), Term::Real(-2.25), Term::Real(3.75),
          Term::Real(0.5), Term::Real(1.5)};
}

AggState FoldSeq(AggKind kind, const std::vector<Term>& values) {
  AggState acc = AggIdentity();
  for (const Term& v : values) AggAccumulate(kind, v, &acc);
  return acc;
}

/// Folds values[lo, hi) pairwise via a split tree — a different
/// association of the same fold.
AggState FoldTree(AggKind kind, const std::vector<Term>& values, size_t lo,
                  size_t hi) {
  if (hi - lo == 0) return AggIdentity();
  if (hi - lo == 1) {
    AggState s = AggIdentity();
    AggAccumulate(kind, values[lo], &s);
    return s;
  }
  size_t mid = lo + (hi - lo) / 2;
  AggState left = FoldTree(kind, values, lo, mid);
  AggState right = FoldTree(kind, values, mid, hi);
  AggCombine(kind, right, &left);
  return left;
}

TEST(Monoid, IdentityIsTwoSided) {
  for (AggKind kind : kAllKinds) {
    AggState x = FoldSeq(kind, MixedValues());
    AggState left = AggIdentity();
    AggCombine(kind, x, &left);  // e (+) x
    AggState right = x;
    AggCombine(kind, AggIdentity(), &right);  // x (+) e
    EXPECT_EQ(AggExtract(kind, left), AggExtract(kind, x))
        << "kind " << static_cast<int>(kind);
    EXPECT_EQ(AggExtract(kind, right), AggExtract(kind, x))
        << "kind " << static_cast<int>(kind);
  }
}

TEST(Monoid, TreeFoldEqualsSequentialFoldIntExact) {
  std::vector<Term> values = MixedValues();
  for (AggKind kind : kAllKinds) {
    AggState seq = FoldSeq(kind, values);
    AggState tree = FoldTree(kind, values, 0, values.size());
    // Integer inputs: every kind must agree exactly, including kAvg
    // (integer sum divided once at extraction).
    EXPECT_EQ(AggExtract(kind, seq), AggExtract(kind, tree))
        << "kind " << static_cast<int>(kind);
  }
}

TEST(Monoid, TreeFoldEqualsSequentialFoldRealTolerance) {
  std::vector<Term> values = RealValues();
  for (AggKind kind : {AggKind::kSum, AggKind::kAvg}) {
    Term seq = AggExtract(kind, FoldSeq(kind, values));
    Term tree = AggExtract(kind, FoldTree(kind, values, 0, values.size()));
    ASSERT_TRUE(seq.value().is_double());
    ASSERT_TRUE(tree.value().is_double());
    EXPECT_NEAR(seq.value().as_double(), tree.value().as_double(), 1e-9)
        << "kind " << static_cast<int>(kind);
  }
  for (AggKind kind : {AggKind::kCount, AggKind::kMin, AggKind::kMax}) {
    EXPECT_EQ(AggExtract(kind, FoldSeq(kind, values)),
              AggExtract(kind, FoldTree(kind, values, 0, values.size())));
  }
}

TEST(Monoid, AssociativityOverEverySplit) {
  std::vector<Term> values = MixedValues();
  for (AggKind kind : kAllKinds) {
    AggState whole = FoldSeq(kind, values);
    for (size_t cut1 = 0; cut1 <= values.size(); ++cut1) {
      for (size_t cut2 = cut1; cut2 <= values.size(); ++cut2) {
        // (a (+) b) (+) c
        AggState ab = FoldTree(kind, values, 0, cut1);
        AggCombine(kind, FoldTree(kind, values, cut1, cut2), &ab);
        AggCombine(kind, FoldTree(kind, values, cut2, values.size()), &ab);
        // a (+) (b (+) c)
        AggState bc = FoldTree(kind, values, cut1, cut2);
        AggCombine(kind, FoldTree(kind, values, cut2, values.size()), &bc);
        AggState a = FoldTree(kind, values, 0, cut1);
        AggCombine(kind, bc, &a);
        EXPECT_EQ(AggExtract(kind, ab), AggExtract(kind, a))
            << "kind " << static_cast<int>(kind) << " cuts " << cut1 << ","
            << cut2;
      }
    }
  }
}

TEST(Monoid, MinMaxFirstWinsTies) {
  // Two distinct terms that compare equal do not exist in the term order,
  // so first-wins is observed through stability: accumulating equal ints
  // keeps a best, and combine prefers the left operand on ties.
  AggState left = AggIdentity();
  AggAccumulate(AggKind::kMin, Term::Int(3), &left);
  AggState right = AggIdentity();
  AggAccumulate(AggKind::kMin, Term::Int(3), &right);
  AggCombine(AggKind::kMin, right, &left);
  EXPECT_EQ(left.count, 2);
  EXPECT_EQ(AggExtract(AggKind::kMin, left), Term::Int(3));
}

// --- counters and metrics ---------------------------------------------------

TEST(Tenancy, MetricsExportTenantCounters) {
  MetricsRegistry metrics;
  EngineOptions options;
  options.metrics = &metrics;
  MultiTenantEngine mte(options);
  ASSERT_TRUE(mte.AddProgram("a", *ParseProgram(kTwoStreamJoin)).ok());
  ASSERT_TRUE(mte.AddProgram("b", *ParseProgram(kTwoStreamJoin)).ok());
  ASSERT_TRUE(mte.AddProgram("c", *ParseProgram(kRenamedJoin)).ok());
  Network net(Topology::Grid(3), LinkModel{}, TestSeed(7));
  ASSERT_TRUE(mte.Start(&net).ok());
  EXPECT_EQ(metrics.CounterTotal("tenant", "tenants"), 3u);
  EXPECT_EQ(metrics.CounterTotal("tenant", "subplans_requested"), 3u);
  EXPECT_EQ(metrics.CounterTotal("tenant", "subplans_total"), 1u);
  EXPECT_EQ(metrics.CounterTotal("tenant", "subplans_shared"), 2u);
  EXPECT_EQ(metrics.CounterTotal("tenant", "fanout_edges"), 1u);
}

// --- wire -------------------------------------------------------------------

TEST(Tenancy, ResultWireTenantRoundTripsAndDefaultsToZero) {
  ResultWire rw;
  rw.final_target = 3;
  rw.pred = Intern("t");
  rw.fact = Fact(Intern("t"), {Term::Int(1), Term::Int(2)});
  rw.update_ts = 7;
  rw.tenant = 5;
  auto decoded = ResultWire::Decode(rw.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->tenant, 5u);

  // Pre-tenancy frames (no trailing field) decode with tenant == 0, and a
  // zero tenant adds no bytes — the wire stays byte-identical for every
  // single-tenant engine.
  rw.tenant = 0;
  Message legacy = rw.Encode();
  auto old = ResultWire::Decode(legacy);
  ASSERT_TRUE(old.ok()) << old.status();
  EXPECT_EQ(old->tenant, 0u);
}

// --- degraded isolation under overload --------------------------------------

TEST(Tenancy, SheddingTenantDoesNotTaintDisjointTenant) {
  // Tenant A (streams r/s) is driven into budget shedding; tenant B
  // (streams ra/sa) runs a light, disjoint workload on the same shared
  // engine. B's results must stay complete and undegraded: one tenant's
  // overload must never taint another tenant's result homes.
  const char* kOther = R"(
    .decl ra/3 input.
    .decl sa/3 input.
    u(K, N1, N2) :- ra(K, N1, I1), sa(K, N2, I2).
  )";
  Workload heavy = JoinWorkload(40, 2, "r", "s");
  Workload light = JoinWorkload(6, 3, "ra", "sa");
  std::set<std::string> oracle_b = IndependentRun(kOther, light);
  ASSERT_FALSE(oracle_b.empty());

  // Cap chosen between the two loads: heavy floods ~20 replicas per
  // storage node and must shed; light peaks well under 8 and must not.
  EngineOptions options;
  options.budget.enabled = true;
  options.budget.max_replicas_per_pred = 8;
  options.budget.policy = ShedPolicy::kShedNewest;

  Network net(Topology::Grid(3), LinkModel{}, TestSeed(13));
  MultiTenantEngine mte(options);
  ASSERT_TRUE(mte.AddProgram("heavy", *ParseProgram(kTwoStreamJoin)).ok());
  ASSERT_TRUE(mte.AddProgram("light", *ParseProgram(kOther)).ok());
  ASSERT_TRUE(mte.Start(&net).ok());
  Workload both;
  both.items = heavy.items;
  both.items.insert(both.items.end(), light.items.begin(), light.items.end());
  for (const auto& [node, fact] : both.items) {
    net.sim().RunUntil(net.sim().now() + 50'000);
    ASSERT_TRUE(mte.Inject(node, StreamOp::kInsert, fact).ok());
  }
  mte.Run();
  // The heavy tenant actually shed (otherwise this test shows nothing).
  EXPECT_GT(mte.stats().sheds + mte.stats().budget_evictions, 0u);
  // The light tenant's undegraded view equals its fault-free oracle.
  auto undeg = mte.UndegradedResultDatabase("light");
  ASSERT_TRUE(undeg.ok()) << undeg.status();
  EXPECT_EQ(FactSet(*undeg), oracle_b);
}

}  // namespace
}  // namespace deduce
