// State-repair coverage (DESIGN.md §10): post-reboot resynchronization of
// PA storage bands, periodic anti-entropy between band neighbors, degraded
// tagging of answers computed through unsynced nodes, and the crash-reboot
// flood-dedup regression. Scenarios mirror docs/FAULTS.md "State repair".

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "test_util.h"

namespace deduce {
namespace {

constexpr char kTwoStreamJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

/// Deterministic link: exactly 1 ms per hop, no loss.
LinkModel StepLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 0;
  link.per_byte_delay = 0;
  return link;
}

struct Injection {
  SimTime at = 0;
  NodeId node = kNoNode;
  const char* pred = "r";
  int key = 0;
};

struct RunOutcome {
  std::set<std::string> facts;
  EngineStats stats;
  uint64_t nodes_recovered = 0;
};

/// Runs kTwoStreamJoin on `topo` with the given faults/options, applying
/// `injections` at their scheduled times, then quiescing.
RunOutcome RunScenario(const Topology& topo, const LinkModel& link,
                       const EngineOptions& options,
                       const std::vector<Injection>& injections,
                       uint64_t seed, const FaultPlan* faults = nullptr) {
  RunOutcome out;
  auto program = ParseProgram(kTwoStreamJoin);
  EXPECT_TRUE(program.ok()) << program.status();
  Network net(topo, link, seed);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  if (!engine.ok()) return out;
  int seq = 0;
  for (const Injection& inj : injections) {
    net.sim().RunUntil(inj.at);
    EXPECT_TRUE((*engine)
                    ->Inject(inj.node, StreamOp::kInsert,
                             Fact(Intern(inj.pred),
                                  {Term::Int(inj.key), Term::Int(inj.node),
                                   Term::Int(seq++)}))
                    .ok());
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.facts.insert(f.ToString());
  }
  out.stats = (*engine)->stats();
  out.nodes_recovered = net.stats().nodes_recovered;
  return out;
}

std::string Pair(int key, NodeId r_node, NodeId s_node) {
  return "t(" + std::to_string(key) + ", " + std::to_string(r_node) + ", " +
         std::to_string(s_node) + ")";
}

// --- reboot resync (tentpole, mode 1) --------------------------------------

TEST(RepairTest, RebootResyncRecoversBandReplicas) {
  // r lives on band y=2 (row walk completes by ~105 ms). The band node the
  // later column sweep will consult, (2,2), crash-reboots in between —
  // losing its replica store. With resync on it re-pulls r from a band
  // peer before the sweep arrives; with it off the sweep reads an empty
  // store and the join silently loses its only matching pair.
  Topology topo = Topology::Grid(5);
  NodeId r_node = topo.GridNode(0, 2);
  NodeId s_node = topo.GridNode(2, 0);
  FaultPlan faults;
  faults.Fail(400'000, topo.GridNode(2, 2));
  faults.Recover(500'000, topo.GridNode(2, 2));
  std::vector<Injection> injections = {
      {100'000, r_node, "r", 0},
      {1'200'000, s_node, "s", 0},
  };

  EngineOptions on;
  on.repair.enabled = true;
  RunOutcome with = RunScenario(topo, StepLink(), on, injections,
                                TestSeed(21), &faults);
  EXPECT_TRUE(with.stats.errors.empty());
  EXPECT_EQ(with.nodes_recovered, 1u);
  EXPECT_TRUE(with.facts.count(Pair(0, r_node, s_node)))
      << "resynced node should serve the recovered replica";
  EXPECT_EQ(with.stats.resyncs_started, 1u);
  EXPECT_EQ(with.stats.resyncs_completed, 1u);
  EXPECT_EQ(with.stats.resyncs_abandoned, 0u);
  EXPECT_GE(with.stats.repair_replicas_pulled, 1u);
  EXPECT_GT(with.stats.resync_time_us, 0u);

  EngineOptions off;
  RunOutcome without = RunScenario(topo, StepLink(), off, injections,
                                   TestSeed(21), &faults);
  EXPECT_EQ(without.facts.count(Pair(0, r_node, s_node)), 0u)
      << "without repair the rebooted node must under-report";
  EXPECT_EQ(without.stats.resyncs_started, 0u);
  EXPECT_EQ(without.stats.repair_digest_rounds, 0u);
  EXPECT_EQ(without.stats.repair_replicas_pulled, 0u);
}

// --- end-to-end churn recall (satellite: churn recall test) -----------------

TEST(RepairTest, ChurnRecallMatchesNoFaultOracle) {
  // Three band nodes holding live r replicas crash-reboot (staggered) with
  // the reliable transport on. Every sweep consults exactly those nodes
  // after their reboots. With resync the answer set equals the no-fault
  // oracle; without it every pair is lost.
  Topology topo = Topology::Grid(5);
  NodeId s_node = topo.GridNode(2, 0);
  FaultPlan churn = FaultPlan::Churn(
      {topo.GridNode(2, 1), topo.GridNode(2, 2), topo.GridNode(2, 3)},
      /*first_fail=*/600'000, /*downtime=*/400'000, /*stagger=*/500'000);
  std::vector<Injection> injections;
  std::set<std::string> oracle;
  for (int k = 0; k < 3; ++k) {
    NodeId r_node = topo.GridNode(0, k + 1);
    injections.push_back({100'000 + 30'000 * k, r_node, "r", k});
    oracle.insert(Pair(k, r_node, s_node));
  }
  for (int k = 0; k < 3; ++k) {
    injections.push_back({2'600'000 + 300'000 * k, s_node, "s", k});
  }

  EngineOptions on;
  on.transport.reliable = true;
  on.repair.enabled = true;
  RunOutcome with = RunScenario(topo, StepLink(), on, injections,
                                TestSeed(22), &churn);
  EXPECT_TRUE(with.stats.errors.empty());
  EXPECT_EQ(with.nodes_recovered, 3u);
  EXPECT_EQ(with.facts, oracle) << "repair on: recall must match oracle";
  EXPECT_EQ(with.stats.resyncs_started, 3u);
  EXPECT_EQ(with.stats.resyncs_completed, 3u);
  EXPECT_GE(with.stats.repair_replicas_pulled, 3u);

  EngineOptions off;
  off.transport.reliable = true;
  RunOutcome without = RunScenario(topo, StepLink(), off, injections,
                                   TestSeed(22), &churn);
  EXPECT_TRUE(without.facts.empty())
      << "repair off: rebooted band nodes under-report every pair";
}

// --- periodic anti-entropy (tentpole, mode 2) -------------------------------

TEST(RepairTest, AntiEntropyHealsPartialStorageWalk) {
  // (2,2) is dead while r's row walk runs, so the walk dies there: only
  // (0,2) and (1,2) hold the replica. Nobody "rebooted with data" — resync
  // never fires — but periodic anti-entropy lets the repaired replica
  // propagate band-member to band-member until the whole band converges,
  // and then goes quiet (this test terminating at all shows the dirt
  // tracking quiesces the timers).
  Topology topo = Topology::Grid(5);
  NodeId r_node = topo.GridNode(0, 2);
  NodeId s_node = topo.GridNode(2, 0);
  FaultPlan faults;
  faults.Fail(0, topo.GridNode(2, 2));
  faults.Recover(300'000, topo.GridNode(2, 2));
  std::vector<Injection> injections = {
      {100'000, r_node, "r", 0},
      {2'500'000, s_node, "s", 0},
  };

  EngineOptions ae;
  ae.repair.anti_entropy_period = 400'000;
  RunOutcome with = RunScenario(topo, StepLink(), ae, injections,
                                TestSeed(23), &faults);
  EXPECT_TRUE(with.stats.errors.empty());
  EXPECT_TRUE(with.facts.count(Pair(0, r_node, s_node)))
      << "anti-entropy should heal the truncated row walk";
  // The replica crossed (2,2), (3,2) and (4,2) via repair pulls.
  EXPECT_GE(with.stats.repair_replicas_pulled, 3u);
  EXPECT_GT(with.stats.repair_digest_rounds, 0u);
  // Reboot resync stayed off.
  EXPECT_EQ(with.stats.resyncs_started, 0u);

  EngineOptions off;
  RunOutcome without = RunScenario(topo, StepLink(), off, injections,
                                   TestSeed(23), &faults);
  EXPECT_EQ(without.facts.count(Pair(0, r_node, s_node)), 0u)
      << "without anti-entropy the truncated walk never heals";
}

// --- degraded tagging + resync abandonment ----------------------------------

TEST(RepairTest, AbandonedResyncTagsResultsDegraded) {
  // Band y=4 is dead except (2,4), which then crash-reboots: its resync
  // has no alive peer to pull from, burns its attempts, and is abandoned.
  // A sweep passing through it *while still unsynced* yields an answer
  // tagged degraded; a later sweep (post-abandonment) does not.
  Topology topo = Topology::Grid(5);
  NodeId lone = topo.GridNode(2, 4);
  FaultPlan faults;
  for (int x = 0; x < 5; ++x) {
    if (topo.GridNode(x, 4) != lone) faults.Fail(0, topo.GridNode(x, 4));
  }
  faults.Fail(400'000, lone);
  faults.Recover(500'000, lone);

  NodeId r_node = topo.GridNode(0, 3);
  NodeId s_node = topo.GridNode(2, 0);
  std::vector<Injection> injections = {
      {100'000, r_node, "r", 0},
      {600'000, s_node, "s", 0},   // sweep crosses (2,4) mid-resync
      {2'000'000, r_node, "r", 1},
      {2'600'000, s_node, "s", 1},  // sweep crosses (2,4) post-abandonment
  };

  EngineOptions options;
  options.transport.reliable = true;
  options.repair.enabled = true;
  options.repair.resync_timeout = 150'000;
  options.repair.max_resync_attempts = 3;
  RunOutcome out = RunScenario(topo, StepLink(), options, injections,
                               TestSeed(24), &faults);
  EXPECT_TRUE(out.facts.count(Pair(0, r_node, s_node)));
  EXPECT_TRUE(out.facts.count(Pair(1, r_node, s_node)));
  EXPECT_EQ(out.stats.resyncs_started, 1u);
  EXPECT_EQ(out.stats.resyncs_abandoned, 1u);
  EXPECT_EQ(out.stats.resyncs_completed, 0u);
  EXPECT_EQ(out.stats.degraded_results, 1u)
      << "only the mid-resync answer is degraded";
  // Digest requests to the dead band peers made the transport give up and
  // mark them suspected, bumping the shared liveness epoch.
  EXPECT_GT(out.stats.liveness_epoch, 1u);
}

// --- flood dedup across reboot (satellite: regression) ----------------------

TEST(RepairTest, FloodDedupStateSurvivesReboot) {
  // Broadcast storage floods every node; grid redundancy means most nodes
  // receive several copies and suppress all but the first. (1,1) receives
  // its first copies at t=102 ms, crash-reboots, and straggler copies (via
  // the longer grid paths) arrive at t=104 ms — *after* the reboot. The
  // flood-dedup set must survive the reboot: re-processing a straggler
  // would silently re-store (and re-forward) a flood the node already
  // handled, exactly the duplicate-derivation hole this regression pins.
  constexpr char kBroadcastJoin[] = R"(
    .decl b/2 input storage broadcast.
    .decl probe/2 input.
    t(K, N) :- b(K, N), probe(K, N).
  )";
  auto program = ParseProgram(kBroadcastJoin);
  ASSERT_TRUE(program.ok()) << program.status();
  Topology topo = Topology::Grid(4);
  NodeId victim = topo.GridNode(1, 1);
  Network net(topo, StepLink(), TestSeed(25));
  FaultPlan faults;
  faults.Fail(102'400, victim);
  faults.Recover(102'900, victim);
  net.ApplyFaultPlan(faults);
  EngineOptions options;  // repair off: isolates the dedup fix
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  net.sim().RunUntil(100'000);
  ASSERT_TRUE((*engine)
                  ->Inject(topo.GridNode(0, 0), StreamOp::kInsert,
                           Fact(Intern("b"), {Term::Int(0), Term::Int(7)}))
                  .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->stats().errors.empty());
  EXPECT_EQ(net.stats().nodes_recovered, 1u);
  // 16 nodes stored the flood; the victim's copy died with its reboot and
  // the stragglers were suppressed, not re-stored. (With the pre-fix
  // cleared dedup set this is 16: the straggler is re-processed.)
  EXPECT_EQ((*engine)->TotalReplicas(), 15u);
}

// --- LivenessView hardening (satellite) -------------------------------------

TEST(LivenessViewTest, MarkRejectsOutOfRangeNodes) {
  LivenessView view;
  view.down.assign(4, 0);
  // Out-of-range ids (a corrupted NodeId that escaped wire decoding) are
  // rejected without touching the view or its version.
  EXPECT_FALSE(view.Mark(4, true));
  EXPECT_FALSE(view.Mark(1'000'000, true));
  EXPECT_FALSE(view.Mark(-1, true));
  EXPECT_EQ(view.version, 1u);
  for (char c : view.down) EXPECT_EQ(c, 0);
  // In-range marks behave as before: change bumps, no-op doesn't.
  EXPECT_TRUE(view.Mark(2, true));
  EXPECT_EQ(view.version, 2u);
  EXPECT_TRUE(view.IsDown(2));
  EXPECT_FALSE(view.Mark(2, true));
  EXPECT_EQ(view.version, 2u);
  EXPECT_TRUE(view.Mark(2, false));
  EXPECT_EQ(view.version, 3u);
  EXPECT_FALSE(view.IsDown(-1));
  EXPECT_FALSE(view.IsDown(4));
}

}  // namespace
}  // namespace deduce
