// Parameterized distributed-vs-centralized equivalence sweeps: the repo's
// central invariant (Theorems 1-3) checked across the full cross product of
// GPA approaches, topologies, schemes and workload seeds.

#include <gtest/gtest.h>

#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

namespace deduce {
namespace {

constexpr char kJoinNegProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  .decl block/2 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
  ok(K, N1, N2) :- t(K, N1, N2), NOT block(K, N1).
)";

struct SweepCase {
  std::string name;
  StoragePolicy storage;
  bool multipass;
  bool random_topology;
  uint64_t seed;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EquivalenceSweep, DistributedMatchesCentralized) {
  const SweepCase& param = GetParam();
  Topology topo;
  if (param.random_topology) {
    Rng trng(param.seed);
    do {
      topo = Topology::RandomGeometric(24, 6, 6, 2.2, &trng);
    } while (!topo.IsConnected());
  } else {
    topo = Topology::Grid(4);
  }

  auto parsed = ParseProgram(kJoinNegProgram);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  LinkModel link;
  link.max_clock_skew = 0;
  Network net(topo, link, param.seed);
  EngineOptions options;
  options.planner.default_storage = param.storage;
  options.planner.multipass = param.multipass;
  auto engine = DistributedEngine::Create(&net, *parsed, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  auto reference = IncrementalEngine::Create(*parsed, IncrementalOptions{});
  ASSERT_TRUE(reference.ok()) << reference.status();

  Rng rng(param.seed * 77 + 13);
  std::vector<std::pair<NodeId, Fact>> alive;
  SimTime t = 10'000;
  for (int i = 0; i < 28; ++i, t += 150'000) {
    net.sim().RunUntil(t);
    StreamEvent ev;
    ev.time = t;
    ev.id = TupleId{0, t, 0};
    if (!alive.empty() && rng.Bernoulli(0.25)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      ev.op = StreamOp::kDelete;
      ev.fact = alive[k].second;
      ev.id.source = alive[k].first;
      ASSERT_TRUE(
          (*engine)->Inject(alive[k].first, StreamOp::kDelete, ev.fact).ok());
      alive.erase(alive.begin() + static_cast<long>(k));
    } else {
      NodeId node = static_cast<NodeId>(rng.Uniform(0, topo.node_count() - 1));
      int which = static_cast<int>(rng.Uniform(0, 2));
      Fact f = which == 0
                   ? Fact(Intern("r"), {Term::Int(rng.Uniform(0, 3)),
                                        Term::Int(node), Term::Int(i)})
                   : which == 1
                         ? Fact(Intern("s"), {Term::Int(rng.Uniform(0, 3)),
                                              Term::Int(node), Term::Int(i)})
                         : Fact(Intern("block"),
                                {Term::Int(rng.Uniform(0, 3)),
                                 Term::Int(rng.Uniform(0, topo.node_count() - 1))});
      ev.op = StreamOp::kInsert;
      ev.fact = f;
      ev.id.source = node;
      ASSERT_TRUE((*engine)->Inject(node, StreamOp::kInsert, f).ok());
      alive.emplace_back(node, f);
    }
    ASSERT_TRUE((*reference)->Apply(ev, nullptr).ok());
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  for (const char* pred : {"t", "ok"}) {
    std::set<std::string> got, want;
    for (const Fact& f : (*engine)->ResultFacts(Intern(pred))) {
      got.insert(f.ToString());
    }
    for (const Fact& f : (*reference)->AliveFacts(Intern(pred))) {
      want.insert(f.ToString());
    }
    EXPECT_EQ(got, want) << pred << " under " << param.name;
  }
}

std::vector<SweepCase> MakeCases() {
  std::vector<SweepCase> cases;
  struct Policy {
    const char* name;
    StoragePolicy storage;
  };
  for (Policy p : std::vector<Policy>{{"pa", StoragePolicy::kRow},
                                      {"bcast", StoragePolicy::kBroadcast},
                                      {"local", StoragePolicy::kLocal},
                                      {"centroid", StoragePolicy::kCentroid}}) {
    for (bool multipass : {false, true}) {
      for (bool random_topo : {false, true}) {
        for (uint64_t seed : {1u, 2u}) {
          // Multipass only affects sweep strategies; skip redundant combos.
          if (multipass && p.storage != StoragePolicy::kRow &&
              p.storage != StoragePolicy::kLocal) {
            continue;
          }
          SweepCase c;
          c.name = std::string(p.name) + (multipass ? "_multi" : "_single") +
                   (random_topo ? "_rgg" : "_grid") + "_s" +
                   std::to_string(seed);
          c.storage = p.storage;
          c.multipass = multipass;
          c.random_topology = random_topo;
          c.seed = seed;
          cases.push_back(std::move(c));
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, EquivalenceSweep,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

// Partial results track matched body literals in a 32-bit mask (1u << i),
// so literal index 31 is the last representable one. The planner must
// accept 31 body literals and reject 32 with a clear diagnostic instead of
// shifting by 32 at runtime (undefined behavior).
std::string WideRuleProgram(int literals) {
  std::string text;
  std::string body;
  for (int i = 0; i < literals; ++i) {
    std::string pred = "b" + std::to_string(i);
    text += ".decl " + pred + "/1 input.\n";
    body += (i == 0 ? "" : ", ") + pred + "(X)";
  }
  text += "wide(X) :- " + body + ".\n";
  return text;
}

TEST(PlanMaskLimit, AcceptsThirtyOneBodyLiterals) {
  auto program = ParseProgram(WideRuleProgram(31));
  ASSERT_TRUE(program.ok()) << program.status();
  auto plan = CompilePlan(*program, BuiltinRegistry::Default(),
                          PlannerOptions{});
  EXPECT_TRUE(plan.ok()) << plan.status();
}

TEST(PlanMaskLimit, RejectsThirtyTwoBodyLiterals) {
  auto program = ParseProgram(WideRuleProgram(32));
  ASSERT_TRUE(program.ok()) << program.status();
  auto plan = CompilePlan(*program, BuiltinRegistry::Default(),
                          PlannerOptions{});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(plan.status().message().find("32 bits"), std::string::npos)
      << plan.status();
}

}  // namespace
}  // namespace deduce
