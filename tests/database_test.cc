#include "deduce/eval/database.h"

#include <gtest/gtest.h>

#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

Fact F(const std::string& pred, std::vector<Term> args) {
  return Fact(Intern(pred), std::move(args));
}

TEST(DatabaseTest, InsertDeduplicates) {
  Database db;
  EXPECT_TRUE(db.Insert(F("p", {Term::Int(1)})));
  EXPECT_FALSE(db.Insert(F("p", {Term::Int(1)})));
  EXPECT_TRUE(db.Insert(F("p", {Term::Int(2)})));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.RelationSize(Intern("p")), 2u);
}

TEST(DatabaseTest, ContainsAndErase) {
  Database db;
  Fact f = F("p", {Term::Int(1)});
  db.Insert(f);
  EXPECT_TRUE(db.Contains(f));
  EXPECT_TRUE(db.Erase(f));
  EXPECT_FALSE(db.Contains(f));
  EXPECT_FALSE(db.Erase(f));
  EXPECT_EQ(db.size(), 0u);
}

TEST(DatabaseTest, ScanPreservesInsertionOrder) {
  Database db;
  for (int i = 0; i < 5; ++i) db.Insert(F("p", {Term::Int(i)}));
  std::vector<int64_t> seen;
  db.Scan(Intern("p"), [&](const Fact& f, const TupleId&) {
    seen.push_back(f.args()[0].value().as_int());
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(DatabaseTest, ScanUnknownPredicateIsEmpty) {
  Database db;
  int count = 0;
  db.Scan(Intern("nothing_here"), [&](const Fact&, const TupleId&) {
    ++count;
  });
  EXPECT_EQ(count, 0);
}

TEST(DatabaseTest, SameFacts) {
  Database a, b;
  a.Insert(F("p", {Term::Int(1)}));
  a.Insert(F("q", {Term::Int(2)}));
  b.Insert(F("q", {Term::Int(2)}));
  b.Insert(F("p", {Term::Int(1)}));
  EXPECT_TRUE(a.SameFacts(b));
  b.Insert(F("p", {Term::Int(3)}));
  EXPECT_FALSE(a.SameFacts(b));
}

TEST(DatabaseTest, ToStringSorted) {
  Database db;
  db.Insert(F("b", {Term::Int(2)}));
  db.Insert(F("a", {Term::Int(1)}));
  EXPECT_EQ(db.ToString(), "a(1)\nb(2)\n");
}

TEST(DatabaseTest, PredicatesSortedByName) {
  Database db;
  db.Insert(F("zeta", {Term::Int(1)}));
  db.Insert(F("alpha", {Term::Int(1)}));
  std::vector<SymbolId> preds = db.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(SymbolName(preds[0]), "alpha");
  EXPECT_EQ(SymbolName(preds[1]), "zeta");
}

TEST(FactTest, EqualityAndHash) {
  Fact a = F("p", {Term::Int(1), Term::Sym("x")});
  Fact b = F("p", {Term::Int(1), Term::Sym("x")});
  Fact c = F("p", {Term::Int(1), Term::Sym("y")});
  Fact d = F("q", {Term::Int(1), Term::Sym("x")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(FactTest, ToStringForm) {
  EXPECT_EQ(F("p", {}).ToString(), "p()");
  EXPECT_EQ(F("veh", {Term::Sym("enemy"), Term::Int(3)}).ToString(),
            "veh(enemy, 3)");
}

TEST(TupleIdTest, OrderingAndEquality) {
  TupleId a{1, 10, 0};
  TupleId b{1, 10, 1};
  TupleId c{2, 5, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (TupleId{1, 10, 0}));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "(1@10#0)");
}

TEST(StreamEventTest, ToStringShowsOp) {
  StreamEvent e;
  e.op = StreamOp::kDelete;
  e.fact = F("p", {Term::Int(1)});
  e.time = 42;
  EXPECT_NE(e.ToString().find("-p(1)"), std::string::npos);
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

TEST(DatabaseIndexTest, ScanBoundFindsExactlyMatches) {
  Database db;
  for (int i = 0; i < 20; ++i) {
    db.Insert(Fact(Intern("e"), {Term::Int(i % 4), Term::Int(i)}));
  }
  std::vector<int64_t> seen;
  db.ScanBound(Intern("e"), 0, Term::Int(2), [&](const Fact& f, const TupleId&) {
    EXPECT_EQ(f.args()[0], Term::Int(2));
    seen.push_back(f.args()[1].value().as_int());
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{2, 6, 10, 14, 18}));
}

TEST(DatabaseIndexTest, IndexMaintainedAcrossInserts) {
  Database db;
  db.Insert(Fact(Intern("e"), {Term::Int(1), Term::Int(10)}));
  // Build the index...
  int count = 0;
  db.ScanBound(Intern("e"), 0, Term::Int(1),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 1);
  // ...then insert more: the index must pick them up.
  db.Insert(Fact(Intern("e"), {Term::Int(1), Term::Int(11)}));
  db.Insert(Fact(Intern("e"), {Term::Int(2), Term::Int(12)}));
  count = 0;
  db.ScanBound(Intern("e"), 0, Term::Int(1),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(DatabaseIndexTest, IndexSurvivesErase) {
  Database db;
  for (int i = 0; i < 6; ++i) {
    db.Insert(Fact(Intern("e"), {Term::Int(i % 2), Term::Int(i)}));
  }
  int count = 0;
  db.ScanBound(Intern("e"), 1, Term::Int(3),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 1);
  db.Erase(Fact(Intern("e"), {Term::Int(1), Term::Int(3)}));
  count = 0;
  db.ScanBound(Intern("e"), 1, Term::Int(3),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 0);
  // Other entries unaffected.
  count = 0;
  db.ScanBound(Intern("e"), 0, Term::Int(0),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(DatabaseIndexTest, ScanBoundSurvivesReentrantInsertRehash) {
  // Regression: ScanBound used to hold an iterator into the per-position
  // bucket map while invoking the callback. A re-entrant Insert (exactly
  // what semi-naive evaluation of a recursive rule does) that creates new
  // hash buckets rehashes that map and invalidates the iterator — UB on the
  // next loop iteration. Each callback below inserts a burst of facts with
  // fresh position-0 values, forcing growth past the map's load factor.
  Database db;
  for (int i = 0; i < 8; ++i) {
    db.Insert(Fact(Intern("edge"), {Term::Int(0), Term::Int(i)}));
  }
  std::vector<int64_t> seen;
  int fresh = 1000;
  db.ScanBound(Intern("edge"), 0, Term::Int(0),
               [&](const Fact& f, const TupleId&) {
                 seen.push_back(f.args()[1].value().as_int());
                 for (int k = 0; k < 64; ++k) {
                   db.Insert(Fact(Intern("edge"),
                                  {Term::Int(fresh++), Term::Int(0)}));
                 }
               });
  // Every fact visible at scan start is visited exactly once; the facts
  // inserted mid-scan (none of which match the bound value) are not.
  EXPECT_EQ(seen, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(db.RelationSize(Intern("edge")), 8u + 8u * 64u);
}

TEST(DatabaseIndexTest, ScanBoundReentrantMatchingInsertsNotVisited) {
  // Same re-entrancy discipline as Scan: facts inserted during the scan —
  // even ones matching the bound value, which land in the very bucket being
  // walked — are not visited by the in-flight scan but are indexed for the
  // next one.
  Database db;
  for (int i = 0; i < 4; ++i) {
    db.Insert(Fact(Intern("r"), {Term::Int(7), Term::Int(i)}));
  }
  int calls = 0;
  db.ScanBound(Intern("r"), 0, Term::Int(7),
               [&](const Fact&, const TupleId&) {
                 int base = 1000 + 100 * calls;
                 ++calls;
                 for (int k = 0; k < 30; ++k) {
                   db.Insert(Fact(Intern("r"),
                                  {Term::Int(7), Term::Int(base + k)}));
                   db.Insert(Fact(Intern("r"),
                                  {Term::Int(base + k), Term::Int(0)}));
                 }
               });
  EXPECT_EQ(calls, 4);
  int rescan = 0;
  db.ScanBound(Intern("r"), 0, Term::Int(7),
               [&](const Fact&, const TupleId&) { ++rescan; });
  EXPECT_EQ(rescan, 4 + 4 * 30);
}

TEST(DatabaseIndexTest, ScanBoundSurvivesReentrantErase) {
  // An Erase from the callback rebuilds the indexes lazily (they are
  // cleared); the in-flight scan must stop touching the dropped buckets
  // rather than dereference freed memory.
  Database db;
  for (int i = 0; i < 6; ++i) {
    db.Insert(Fact(Intern("p"), {Term::Int(1), Term::Int(i)}));
  }
  int calls = 0;
  db.ScanBound(Intern("p"), 0, Term::Int(1),
               [&](const Fact&, const TupleId&) {
                 ++calls;
                 db.Erase(Fact(Intern("p"), {Term::Int(1), Term::Int(5)}));
               });
  // The scan stops safely after the erase invalidates the index; at least
  // the first fact was delivered and nothing is visited twice.
  EXPECT_GE(calls, 1);
  EXPECT_LE(calls, 6);
  EXPECT_EQ(db.RelationSize(Intern("p")), 5u);
}

TEST(DatabaseIndexTest, StructuredTermsIndexable) {
  Database db;
  db.Insert(Fact(Intern("p"), {Term::Function("loc", {Term::Int(1), Term::Int(2)}),
                               Term::Int(0)}));
  db.Insert(Fact(Intern("p"), {Term::Function("loc", {Term::Int(3), Term::Int(4)}),
                               Term::Int(1)}));
  int count = 0;
  db.ScanBound(Intern("p"), 0,
               Term::Function("loc", {Term::Int(3), Term::Int(4)}),
               [&](const Fact&, const TupleId&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(DatabaseIndexTest, DefaultScanBoundFallbackAgrees) {
  // A reader without an index override filters a full scan; results must
  // coincide with the indexed implementation.
  class Wrapper : public RelationReader {
   public:
    explicit Wrapper(const Database* db) : db_(db) {}
    void Scan(SymbolId pred,
              const std::function<void(const Fact&, const TupleId&)>& fn)
        const override {
      db_->Scan(pred, fn);
    }
    bool Contains(const Fact& f) const override { return db_->Contains(f); }

   private:
    const Database* db_;
  };
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.Insert(Fact(Intern("q"), {Term::Int(i % 5), Term::Int(i)}));
  }
  Wrapper w(&db);
  std::vector<std::string> indexed, fallback;
  db.ScanBound(Intern("q"), 0, Term::Int(3),
               [&](const Fact& f, const TupleId&) {
                 indexed.push_back(f.ToString());
               });
  w.ScanBound(Intern("q"), 0, Term::Int(3),
              [&](const Fact& f, const TupleId&) {
                fallback.push_back(f.ToString());
              });
  EXPECT_EQ(indexed, fallback);
  EXPECT_EQ(indexed.size(), 6u);
}

TEST(DatabaseTest, RelationCapacityEvictsOldestFirst) {
  Database db;
  db.SetRelationCapacity(Intern("p"), 2);
  EXPECT_EQ(db.RelationCapacity(Intern("p")), 2u);
  db.Insert(F("p", {Term::Int(1)}));
  db.Insert(F("p", {Term::Int(2)}));
  EXPECT_EQ(db.evictions(), 0u);
  // At the cap: inserting evicts the oldest tuple, FIFO.
  db.Insert(F("p", {Term::Int(3)}));
  EXPECT_EQ(db.RelationSize(Intern("p")), 2u);
  EXPECT_FALSE(db.Contains(F("p", {Term::Int(1)})));
  EXPECT_TRUE(db.Contains(F("p", {Term::Int(2)})));
  EXPECT_TRUE(db.Contains(F("p", {Term::Int(3)})));
  EXPECT_EQ(db.evictions(), 1u);
  // Other relations are unbudgeted and unaffected.
  db.Insert(F("q", {Term::Int(1)}));
  db.Insert(F("q", {Term::Int(2)}));
  db.Insert(F("q", {Term::Int(3)}));
  EXPECT_EQ(db.RelationSize(Intern("q")), 3u);
  EXPECT_EQ(db.RelationCapacity(Intern("q")), 0u);
  EXPECT_EQ(db.evictions(), 1u);
}

TEST(DatabaseTest, ShrinkingRelationCapacityEvictsImmediately) {
  Database db;
  for (int i = 1; i <= 5; ++i) db.Insert(F("p", {Term::Int(i)}));
  db.SetRelationCapacity(Intern("p"), 2);
  EXPECT_EQ(db.RelationSize(Intern("p")), 2u);
  EXPECT_EQ(db.evictions(), 3u);
  // The two newest survive.
  EXPECT_TRUE(db.Contains(F("p", {Term::Int(4)})));
  EXPECT_TRUE(db.Contains(F("p", {Term::Int(5)})));
  // Cap 0 lifts the limit again.
  db.SetRelationCapacity(Intern("p"), 0);
  db.Insert(F("p", {Term::Int(6)}));
  db.Insert(F("p", {Term::Int(7)}));
  EXPECT_EQ(db.RelationSize(Intern("p")), 4u);
  EXPECT_EQ(db.evictions(), 3u);
}

}  // namespace
}  // namespace deduce
