// Distributed-engine coverage for the paper's richer programs: function
// symbols/lists (Example 2), the logicH variant of the SPT, and fault
// injection (node failure).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "deduce/routing/routing.h"

namespace deduce {
namespace {

LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  return link;
}

StatusOr<bool> CloseReports(const std::vector<Term>& args) {
  const Term& a = args[0];
  const Term& b = args[1];
  if (!a.is_function() || !b.is_function()) return false;
  double ax = a.args()[0].value().AsNumber();
  double ay = a.args()[1].value().AsNumber();
  int64_t at = a.args()[2].value().as_int();
  double bx = b.args()[0].value().AsNumber();
  double by = b.args()[1].value().AsNumber();
  int64_t bt = b.args()[2].value().as_int();
  return bt == at + 1 && std::hypot(ax - bx, ay - by) <= 1.6;
}

TEST(EngineProgramsTest, TrajectoriesWithListsDistributed) {
  const char* program_text = R"(
    .decl report/1 input.
    notstartreport(R2) :- report(R1), report(R2), close(R1, R2).
    notlastreport(R1) :- report(R1), report(R2), close(R1, R2).
    traj([R2, R1]) :- report(R1), report(R2), close(R1, R2),
                      NOT notstartreport(R1).
    traj([R2, X | R]) :- traj([X | R]), report(R2), close(X, R2).
    completetraj([X | R]) :- traj([X | R]), NOT notlastreport(X).
  )";
  BuiltinRegistry registry = BuiltinRegistry::Default();
  registry.RegisterPredicate("close", 2, CloseReports);
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok()) << program.status();

  Topology topo = Topology::Grid(5);
  Network net(topo, ExactLink(), 21);
  EngineOptions options;
  options.registry = &registry;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  // One target crossing the field; detections at the nearest sensor.
  SimTime at = 100'000;
  for (int i = 0; i < 4; ++i) {
    net.sim().RunUntil(at);
    NodeId sensor = topo.ClosestNode(i, i);
    ASSERT_TRUE((*engine)
                    ->Inject(sensor, StreamOp::kInsert,
                             Fact(Intern("report"),
                                  {Term::Function("r", {Term::Int(i),
                                                        Term::Int(i),
                                                        Term::Int(i)})}))
                    .ok());
    at += 200'000;
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  std::vector<Fact> complete = (*engine)->ResultFacts(Intern("completetraj"));
  ASSERT_EQ(complete.size(), 1u);
  auto elems = complete[0].args()[0].AsListElements();
  ASSERT_TRUE(elems.has_value());
  EXPECT_EQ(elems->size(), 4u);  // full 4-report trajectory, newest first
  EXPECT_EQ((*elems)[0].ToString(), "r(3, 3, 3)");
  EXPECT_EQ((*elems)[3].ToString(), "r(0, 0, 0)");
}

constexpr char kLogicH[] = R"(
  .decl g/2 input storage spatial 1.
  .decl h(x, y, d) home y stage d storage local.
  .decl h1(y, d) home y stage d storage local.
  h(0, 0, 0).
  h(0, X, 1) :- g(0, X).
  h1(Y, D + 1) :- h(X2, Y, D2), (D + 1) > D2, h(X3, X, D), g(X, Y).
  h(X, Y, D + 1) :- g(X, Y), h(X2, X, D), NOT h1(Y, D + 1).
)";

TEST(EngineProgramsTest, LogicHDistributedBfsTree) {
  Topology topo = Topology::Grid(4);
  Network net(topo, ExactLink(), 8);
  auto program = ParseProgram(kLogicH);
  ASSERT_TRUE(program.ok()) << program.status();
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  SimTime t = 50'000;
  for (int v = 0; v < topo.node_count(); ++v) {
    for (NodeId u : topo.neighbors(v)) {
      net.sim().RunUntil(t);
      ASSERT_TRUE((*engine)
                      ->Inject(v, StreamOp::kInsert,
                               Fact(Intern("g"), {Term::Int(v), Term::Int(u)}))
                      .ok());
      t += 10'000;
    }
  }
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];

  RoutingTable rt(&topo);
  // Min depth per node over h(x, y, d) equals BFS depth; tree edges valid.
  std::map<int, int> min_depth;
  for (const Fact& f : (*engine)->ResultFacts(Intern("h"))) {
    int x = static_cast<int>(f.args()[0].value().as_int());
    int y = static_cast<int>(f.args()[1].value().as_int());
    int d = static_cast<int>(f.args()[2].value().as_int());
    auto [it, inserted] = min_depth.emplace(y, d);
    if (!inserted) it->second = std::min(it->second, d);
    if (d > 0) {
      EXPECT_TRUE(topo.AreNeighbors(x, y) || (x == 0 && d == 1 && y != 0))
          << f.ToString();
    }
  }
  ASSERT_EQ(min_depth.size(), static_cast<size_t>(topo.node_count()));
  for (int v = 0; v < topo.node_count(); ++v) {
    EXPECT_EQ(min_depth[v], rt.HopDistance(v, 0)) << "node " << v;
  }
}

TEST(EngineProgramsTest, FailedNodeDoesNotPoisonOthers) {
  const char* program_text = R"(
    .decl r/3 input.
    .decl s/3 input.
    t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  Topology topo = Topology::Grid(5);
  Network net(topo, ExactLink(), 5);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok());

  // A pair that matches before the failure.
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)
                  ->Inject(2, StreamOp::kInsert,
                           Fact(Intern("r"), {Term::Int(1), Term::Int(2),
                                              Term::Int(0)}))
                  .ok());
  net.sim().RunUntil(200'000);
  ASSERT_TRUE((*engine)
                  ->Inject(22, StreamOp::kInsert,
                           Fact(Intern("s"), {Term::Int(1), Term::Int(22),
                                              Term::Int(1)}))
                  .ok());
  net.sim().Run();
  size_t before = (*engine)->ResultFacts(Intern("t")).size();
  EXPECT_EQ(before, 1u);

  // Kill a mid-grid node. Work that needs it (as a region member, a result
  // home, or a routing hop) is lost, but most pairs elsewhere still
  // complete and nothing crashes or wedges.
  net.FailNode(topo.GridNode(2, 2));
  int seq = 10;
  for (int k = 10; k < 15; ++k) {
    net.sim().RunUntil(net.sim().now() + 100'000);
    ASSERT_TRUE((*engine)
                    ->Inject(0, StreamOp::kInsert,
                             Fact(Intern("r"), {Term::Int(k), Term::Int(0),
                                                Term::Int(seq++)}))
                    .ok());
    net.sim().RunUntil(net.sim().now() + 100'000);
    ASSERT_TRUE((*engine)
                    ->Inject(4, StreamOp::kInsert,
                             Fact(Intern("s"), {Term::Int(k), Term::Int(4),
                                                Term::Int(seq++)}))
                    .ok());
  }
  net.sim().Run();
  std::set<std::string> results;
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    results.insert(f.ToString());
  }
  // The pre-failure result survives; a majority of post-failure pairs
  // (storage row 0 + join column 0/4 avoid the failed node; only results
  // homed at/through it can be lost) still derive.
  EXPECT_TRUE(results.count("t(1, 2, 22)"));
  int post = 0;
  for (int k = 10; k < 15; ++k) {
    post += results.count("t(" + std::to_string(k) + ", 0, 4)") ? 1 : 0;
  }
  EXPECT_GE(post, 3) << "too many pairs lost to a single failed node";
}

TEST(EngineProgramsTest, FailedNodeReroutedWithReliableTransport) {
  // Same scenario as FailedNodeDoesNotPoisonOthers, but with the reliable
  // transport on: give-ups on the dead node trigger sweep repair (a live
  // band member substitutes for it) and routing detours around it, so no
  // post-failure pair is lost.
  const char* program_text = R"(
    .decl r/3 input.
    .decl s/3 input.
    t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  Topology topo = Topology::Grid(5);
  Network net(topo, ExactLink(), 5);
  EngineOptions options;
  options.transport.reliable = true;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok());

  net.FailNode(topo.GridNode(2, 2));
  int seq = 10;
  for (int k = 10; k < 15; ++k) {
    net.sim().RunUntil(net.sim().now() + 300'000);
    ASSERT_TRUE((*engine)
                    ->Inject(0, StreamOp::kInsert,
                             Fact(Intern("r"), {Term::Int(k), Term::Int(0),
                                                Term::Int(seq++)}))
                    .ok());
    net.sim().RunUntil(net.sim().now() + 300'000);
    ASSERT_TRUE((*engine)
                    ->Inject(4, StreamOp::kInsert,
                             Fact(Intern("s"), {Term::Int(k), Term::Int(4),
                                                Term::Int(seq++)}))
                    .ok());
  }
  net.sim().Run();
  std::set<std::string> results;
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    results.insert(f.ToString());
  }
  int post = 0;
  for (int k = 10; k < 15; ++k) {
    post += results.count("t(" + std::to_string(k) + ", 0, 4)") ? 1 : 0;
  }
  EXPECT_EQ(post, 5) << "transport failed to route around the dead node";
  const EngineStats& stats = (*engine)->stats();
  EXPECT_TRUE(stats.errors.empty());
  // The fault machinery actually engaged.
  EXPECT_GT(stats.gave_up_messages + stats.rerouted_hops +
                stats.skipped_sweep_nodes,
            0u);
}

TEST(EngineProgramsTest, ZeroArityPredicatesDistributed) {
  const char* program_text = R"(
    .decl tick/1 input.
    .decl quiet/1 input.
    sawtick(N) :- tick(N).
    alarm(N) :- tick(N), NOT quiet(N).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(3), ExactLink(), 4);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  net.sim().RunUntil(10'000);
  ASSERT_TRUE(
      (*engine)->Inject(4, StreamOp::kInsert, Fact(Intern("tick"), {Term::Int(4)}))
          .ok());
  net.sim().Run();
  EXPECT_EQ((*engine)->ResultFacts(Intern("alarm")).size(), 1u);
  net.sim().RunUntil(net.sim().now() + 50'000);
  ASSERT_TRUE(
      (*engine)
          ->Inject(2, StreamOp::kInsert, Fact(Intern("quiet"), {Term::Int(4)}))
          .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->ResultFacts(Intern("alarm")).empty());
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

TEST(EngineProgramsTest, MixedPlacementsRowPlusBroadcast) {
  // A small, slowly-changing table (calibration constants) broadcast to all
  // nodes; a big stream kept on rows: sweeps consult broadcast replicas at
  // launch, row replicas along the column.
  const char* program_text = R"(
    .decl calib(k, factor) input storage broadcast.
    .decl reading/3 input.
    adjusted(K, V2, N) :- reading(K, V, N), calib(K, F), V2 = V * F.
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), LinkModel{}, 13);
  auto engine = DistributedEngine::Create(&net, *program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();

  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)
                  ->Inject(3, StreamOp::kInsert,
                           Fact(Intern("calib"), {Term::Int(1), Term::Int(2)}))
                  .ok());
  net.sim().RunUntil(400'000);
  ASSERT_TRUE((*engine)
                  ->Inject(12, StreamOp::kInsert,
                           Fact(Intern("reading"),
                                {Term::Int(1), Term::Int(21), Term::Int(12)}))
                  .ok());
  net.sim().Run();
  ASSERT_TRUE((*engine)->stats().errors.empty())
      << (*engine)->stats().errors[0];
  std::vector<Fact> out = (*engine)->ResultFacts(Intern("adjusted"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ToString(), "adjusted(1, 42, 12)");
}

}  // namespace
}  // namespace deduce
