#include "deduce/eval/seminaive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

Database Eval(const std::string& text, const std::vector<Fact>& input = {},
              const EvalOptions& opts = {}) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  auto db = EvaluateProgram(*program, input, opts);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

Fact F(SymbolId pred, std::vector<Term> args) {
  return Fact(pred, std::move(args));
}

TEST(SemiNaiveTest, SingleRule) {
  Database db = Eval(R"(
    edge(1, 2). edge(2, 3).
    out(Y) :- edge(X, Y).
  )");
  SymbolId out = Intern("out");
  EXPECT_TRUE(db.Contains(F(out, {Term::Int(2)})));
  EXPECT_TRUE(db.Contains(F(out, {Term::Int(3)})));
  EXPECT_EQ(db.RelationSize(out), 2u);
}

TEST(SemiNaiveTest, JoinTwoRelations) {
  Database db = Eval(R"(
    r(1, 2). r(2, 3).
    s(2, 10). s(3, 20). s(4, 30).
    j(X, Z) :- r(X, Y), s(Y, Z).
  )");
  SymbolId j = Intern("j");
  EXPECT_EQ(db.RelationSize(j), 2u);
  EXPECT_TRUE(db.Contains(F(j, {Term::Int(1), Term::Int(10)})));
  EXPECT_TRUE(db.Contains(F(j, {Term::Int(2), Term::Int(20)})));
}

TEST(SemiNaiveTest, TransitiveClosure) {
  Database db = Eval(R"(
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 2).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  SymbolId path = Intern("path");
  // From 1: reaches 2,3,4. From 2: 3,4,2. From 3: 4,2,3. From 4: 2,3,4.
  EXPECT_EQ(db.RelationSize(path), 12u);
  EXPECT_TRUE(db.Contains(F(path, {Term::Int(1), Term::Int(4)})));
  EXPECT_TRUE(db.Contains(F(path, {Term::Int(4), Term::Int(4)})));
  EXPECT_FALSE(db.Contains(F(path, {Term::Int(2), Term::Int(1)})));
}

TEST(SemiNaiveTest, SameGeneration) {
  Database db = Eval(R"(
    person(1). person(2). person(3). person(4). person(5). person(6).
    person(7).
    par(1, 3). par(2, 3). par(4, 5). par(6, 5). par(3, 7). par(5, 7).
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
  )");
  SymbolId sg = Intern("sg");
  EXPECT_TRUE(db.Contains(F(sg, {Term::Int(1), Term::Int(2)})));
  EXPECT_TRUE(db.Contains(F(sg, {Term::Int(1), Term::Int(4)})));
  EXPECT_FALSE(db.Contains(F(sg, {Term::Int(1), Term::Int(3)})));
}

TEST(SemiNaiveTest, StratifiedNegation) {
  Database db = Eval(R"(
    node(1). node(2). node(3).
    edge(1, 2).
    connected(X) :- edge(X, _).
    connected(Y) :- edge(_, Y).
    isolated(X) :- node(X), NOT connected(X).
  )");
  SymbolId isolated = Intern("isolated");
  EXPECT_EQ(db.RelationSize(isolated), 1u);
  EXPECT_TRUE(db.Contains(F(isolated, {Term::Int(3)})));
}

TEST(SemiNaiveTest, PaperExample1UncoveredVehicles) {
  Database db = Eval(R"(
    veh("enemy", loc(0, 0), 1).
    veh("enemy", loc(100, 100), 1).
    veh("friendly", loc(3, 4), 1).
    cov(L1, T) :- veh("enemy", L1, T), veh("friendly", L2, T),
                  dist(L1, L2) <= 5.
    uncov(L, T) :- veh("enemy", L, T), NOT cov(L, T).
  )");
  SymbolId uncov = Intern("uncov");
  // Enemy at (0,0) is within 5 of friendly at (3,4); enemy at (100,100) is
  // not.
  EXPECT_EQ(db.RelationSize(uncov), 1u);
  EXPECT_TRUE(db.Contains(
      F(uncov, {Term::Function("loc", {Term::Int(100), Term::Int(100)}),
                Term::Int(1)})));
}

TEST(SemiNaiveTest, ComparisonsAndArithmetic) {
  Database db = Eval(R"(
    n(1). n(2). n(3). n(4).
    big(X) :- n(X), X * 2 > 5.
    plus(X, Y) :- n(X), Y = X + 10.
  )");
  EXPECT_EQ(db.RelationSize(Intern("big")), 2u);
  SymbolId plus = Intern("plus");
  EXPECT_TRUE(db.Contains(F(plus, {Term::Int(4), Term::Int(14)})));
  EXPECT_EQ(db.RelationSize(plus), 4u);
}

TEST(SemiNaiveTest, FunctionSymbolsBuildTerms) {
  Database db = Eval(R"(
    point(1, 2).
    wrapped(p(X, Y)) :- point(X, Y).
  )");
  SymbolId wrapped = Intern("wrapped");
  EXPECT_TRUE(db.Contains(
      F(wrapped, {Term::Function("p", {Term::Int(1), Term::Int(2)})})));
}

TEST(SemiNaiveTest, ListAccumulation) {
  // Build paths as lists over a 4-node line; close() replaced by edge.
  Database db = Eval(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    walk([Y, X]) :- edge(X, Y).
    walk([Z | P]) :- walk(P), P = [Y | _], edge(Y, Z).
  )");
  SymbolId walk = Intern("walk");
  EXPECT_TRUE(db.Contains(F(
      walk, {Term::MakeList({Term::Int(4), Term::Int(3), Term::Int(2),
                             Term::Int(1)})})));
}

TEST(SemiNaiveTest, PaperExample2Trajectories) {
  // Reports on a line: (0,0,0) -> (1,0,1) -> (2,0,2); close() means
  // spatially within 1.5 and exactly +1 in time.
  Database db = Eval(R"(
    report(r(0, 0, 0)). report(r(1, 0, 1)). report(r(2, 0, 2)).
    close(r(X1, Y1, T1), r(X2, Y2, T2)) :-
        report(r(X1, Y1, T1)), report(r(X2, Y2, T2)),
        T2 = T1 + 1, dist(X1, Y1, X2, Y2) <= 1.5.
    notstartreport(R2) :- close(R1, R2).
    notlastreport(R1) :- close(R1, R2).
    traj([R2, R1]) :- close(R1, R2), NOT notstartreport(R1).
    traj([R2, X | R1]) :- traj([X | R1]), close(X, R2).
    completetraj(L) :- traj(L), L = [X | _], NOT notlastreport(X).
  )");
  SymbolId complete = Intern("completetraj");
  ASSERT_EQ(db.RelationSize(complete), 1u);
  const Fact& f = db.Relation(complete)[0];
  auto elems = f.args()[0].AsListElements();
  ASSERT_TRUE(elems.has_value());
  EXPECT_EQ(elems->size(), 3u);  // full 3-report trajectory
}

// --- XY-stratified: the shortest-path-tree programs of Example 3 / §VI ---

constexpr char kLogicH[] = R"(
  h(0, 0, 0).
  h(0, X, 1) :- g(0, X).
  h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
  h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
)";

constexpr char kLogicJ[] = R"(
  j(0, 0).
  j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
  j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
)";

std::vector<Fact> GraphFacts(const std::vector<std::pair<int, int>>& edges) {
  std::vector<Fact> out;
  SymbolId g = Intern("g");
  for (auto [a, b] : edges) {
    out.push_back(F(g, {Term::Int(a), Term::Int(b)}));
    out.push_back(F(g, {Term::Int(b), Term::Int(a)}));
  }
  return out;
}

std::vector<int> BfsDepths(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (auto [a, b] : edges) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  }
  std::vector<int> depth(static_cast<size_t>(n), -1);
  std::queue<int> q;
  depth[0] = 0;
  q.push(0);
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int v : adj[static_cast<size_t>(u)]) {
      if (depth[static_cast<size_t>(v)] == -1) {
        depth[static_cast<size_t>(v)] = depth[static_cast<size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return depth;
}

TEST(XYStagedTest, LogicHComputesBfsTreeOnCycle) {
  // 0-1-2-3-4-0 cycle.
  std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  Database db = Eval(kLogicH, GraphFacts(edges));
  SymbolId h = Intern("h");
  // Expected BFS depths: 1->1, 4->1, 2->2, 3->2.
  EXPECT_TRUE(db.Contains(F(h, {Term::Int(0), Term::Int(1), Term::Int(1)})));
  EXPECT_TRUE(db.Contains(F(h, {Term::Int(0), Term::Int(4), Term::Int(1)})));
  EXPECT_TRUE(db.Contains(F(h, {Term::Int(1), Term::Int(2), Term::Int(2)})));
  EXPECT_TRUE(db.Contains(F(h, {Term::Int(4), Term::Int(3), Term::Int(2)})));
  // No deeper paths: the cycle would give depth-3 entries for node 2 via 3
  // if negation failed.
  EXPECT_FALSE(db.Contains(F(h, {Term::Int(3), Term::Int(2), Term::Int(3)})));
  EXPECT_FALSE(db.Contains(F(h, {Term::Int(2), Term::Int(3), Term::Int(3)})));
}

TEST(XYStagedTest, LogicHMatchesBfsOnRandomGraphs) {
  Rng rng(20090707);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 6 + static_cast<int>(rng.Uniform(0, 6));
    std::vector<std::pair<int, int>> edges;
    // Random connected-ish graph: spanning chain + extras.
    for (int i = 1; i < n; ++i) {
      edges.emplace_back(static_cast<int>(rng.Uniform(0, i - 1)), i);
    }
    for (int e = 0; e < n; ++e) {
      int a = static_cast<int>(rng.Uniform(0, n - 1));
      int b = static_cast<int>(rng.Uniform(0, n - 1));
      if (a != b) edges.emplace_back(a, b);
    }
    Database db = Eval(kLogicH, GraphFacts(edges));
    std::vector<int> depth = BfsDepths(n, edges);
    SymbolId h = Intern("h");
    // Each node's minimum h-depth equals its BFS depth, and no h fact has a
    // smaller depth.
    std::vector<int> got(static_cast<size_t>(n), -1);
    for (const Fact& f : db.Relation(h)) {
      int y = static_cast<int>(f.args()[1].value().as_int());
      int d = static_cast<int>(f.args()[2].value().as_int());
      int& cur = got[static_cast<size_t>(y)];
      if (cur == -1 || d < cur) cur = d;
    }
    for (int v = 0; v < n; ++v) {
      EXPECT_EQ(got[static_cast<size_t>(v)], depth[static_cast<size_t>(v)])
          << "node " << v << " trial " << trial;
    }
  }
}

TEST(XYStagedTest, LogicJOneFactPerNode) {
  std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}};
  Database db = Eval(kLogicJ, GraphFacts(edges));
  std::vector<int> depth = BfsDepths(5, edges);
  SymbolId j = Intern("j");
  // logicJ derives exactly one fact per node: its BFS depth.
  EXPECT_EQ(db.RelationSize(j), 5u);
  for (const Fact& f : db.Relation(j)) {
    int y = static_cast<int>(f.args()[0].value().as_int());
    int d = static_cast<int>(f.args()[1].value().as_int());
    EXPECT_EQ(d, depth[static_cast<size_t>(y)]) << "node " << y;
  }
}

TEST(XYStagedTest, GeneralUnstratifiedRejected) {
  auto program = ParseProgram("win(X) :- move(X, Y), NOT win(Y).");
  ASSERT_TRUE(program.ok());
  auto db = EvaluateProgram(*program,
                            {F(Intern("move"), {Term::Int(1), Term::Int(2)})});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kUnimplemented);
}

TEST(SemiNaiveTest, Aggregates) {
  Database db = Eval(R"(
    score(a, 10). score(a, 20). score(b, 5).
    total(G, sum(S)) :- score(G, S).
    best(G, max(S)) :- score(G, S).
    worst(G, min(S)) :- score(G, S).
    howmany(G, count(S)) :- score(G, S).
    mean(G, avg(S)) :- score(G, S).
  )");
  EXPECT_TRUE(db.Contains(F(Intern("total"), {Term::Sym("a"), Term::Int(30)})));
  EXPECT_TRUE(db.Contains(F(Intern("best"), {Term::Sym("a"), Term::Int(20)})));
  EXPECT_TRUE(db.Contains(F(Intern("worst"), {Term::Sym("b"), Term::Int(5)})));
  EXPECT_TRUE(
      db.Contains(F(Intern("howmany"), {Term::Sym("a"), Term::Int(2)})));
  EXPECT_TRUE(
      db.Contains(F(Intern("mean"), {Term::Sym("b"), Term::Real(5.0)})));
}

TEST(SemiNaiveTest, AggregateOverDerived) {
  Database db = Eval(R"(
    edge(1, 2). edge(1, 3). edge(2, 3).
    deg(X, count(Y)) :- edge(X, Y).
    maxdeg(max(D)) :- deg(X, D).
  )");
  EXPECT_TRUE(db.Contains(F(Intern("maxdeg"), {Term::Int(2)})));
}

TEST(SemiNaiveTest, RecursiveAggregateRejected) {
  auto program = ParseProgram(R"(
    p(X, min(D)) :- p(Y, D), edge(Y, X).
  )");
  ASSERT_TRUE(program.ok());
  auto db = EvaluateProgram(*program, {});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kUnimplemented);
}

TEST(SemiNaiveTest, MaxFactsGuardTrips) {
  // count-up recursion through function symbols never terminates; the guard
  // must trip instead of hanging.
  auto program = ParseProgram(R"(
    n(z).
    n(s(X)) :- n(X).
  )");
  ASSERT_TRUE(program.ok());
  EvalOptions opts;
  opts.max_facts = 1000;
  auto db = EvaluateProgram(*program, {}, opts);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SemiNaiveTest, MultipleRulesSameHeadUnion) {
  Database db = Eval(R"(
    a(1). b(2). c(2).
    u(X) :- a(X).
    u(X) :- b(X), c(X).
  )");
  EXPECT_EQ(db.RelationSize(Intern("u")), 2u);
}

TEST(SemiNaiveTest, NegationAgainstEmptyRelation) {
  Database db = Eval(R"(
    .decl friendof/2 input.
    n(1). n(2).
    haspal(X) :- n(X), friendof(X, Y).
    lonely(X) :- n(X), NOT haspal(X).
  )");
  // friendof is empty: everyone is lonely.
  EXPECT_EQ(db.RelationSize(Intern("lonely")), 2u);
}

TEST(SemiNaiveTest, BuiltinPredicatesInRules) {
  Database db = Eval(R"(
    l([1, 2, 3]).
    has(X) :- l(L), n(X), member(X, L).
    n(2). n(5).
  )");
  EXPECT_EQ(db.RelationSize(Intern("has")), 1u);
  EXPECT_TRUE(db.Contains(F(Intern("has"), {Term::Int(2)})));
}

TEST(SemiNaiveTest, StatsAreReported) {
  auto program = ParseProgram(R"(
    edge(1, 2). edge(2, 3).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  ASSERT_TRUE(program.ok());
  EvalStats stats;
  auto db = EvaluateProgram(*program, {}, {}, &stats);
  ASSERT_TRUE(db.ok());
  EXPECT_GT(stats.facts_derived, 0u);
  EXPECT_GT(stats.rule_firings, 0u);
  EXPECT_GT(stats.probes, 0u);
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

TEST(XYStagedTest, TemporalStateMachine) {
  // §IV-C: "XY-stratification is particularly useful ... because of the
  // ordering imposed sometimes by timestamp attribute". A light stays on
  // from the tick after its on-command until the tick an off-command takes
  // effect — recursion through negation staged by the timestamp.
  const char* program = R"(
    .decl tick/1 input.
    .decl oncmd/2 input.
    .decl offcmd/2 input.
    on(S, T + 1) :- oncmd(S, T), tick(T + 1).
    off1(S, T + 1) :- on(S, T), offcmd(S, T + 1).
    on(S, T + 1) :- on(S, T), tick(T + 1), NOT off1(S, T + 1).
  )";
  std::vector<Fact> facts;
  SymbolId tick = Intern("tick");
  for (int t = 0; t <= 8; ++t) {
    facts.emplace_back(tick, std::vector<Term>{Term::Int(t)});
  }
  facts.emplace_back(Intern("oncmd"),
                     std::vector<Term>{Term::Sym("lamp"), Term::Int(1)});
  facts.emplace_back(Intern("offcmd"),
                     std::vector<Term>{Term::Sym("lamp"), Term::Int(5)});
  facts.emplace_back(Intern("oncmd"),
                     std::vector<Term>{Term::Sym("lamp"), Term::Int(6)});

  Database db = Eval(program, facts);
  SymbolId on = Intern("on");
  // On from tick 2..4 (off at 5 takes effect), then back on 7..8.
  std::set<int64_t> on_ticks;
  for (const Fact& f : db.Relation(on)) {
    on_ticks.insert(f.args()[1].value().as_int());
  }
  EXPECT_EQ(on_ticks, (std::set<int64_t>{2, 3, 4, 7, 8}));
}

TEST(SemiNaiveTest, DoubleComparisonsAndPromotion) {
  Database db = Eval(R"(
    m(1, 2.5). m(2, 2.0). m(3, 1.5).
    above(X) :- m(X, V), V > 1.75.
    exact(X) :- m(X, V), V = 2.0.
  )");
  EXPECT_EQ(db.RelationSize(Intern("above")), 2u);
  EXPECT_EQ(db.RelationSize(Intern("exact")), 1u);
}

TEST(SemiNaiveTest, DeepStratificationChain) {
  // Five alternating negation levels evaluate in order.
  Database db = Eval(R"(
    base(1). base(2). base(3). base(4).
    odd1(X) :- base(X), X > 2.
    even2(X) :- base(X), NOT odd1(X).
    odd3(X) :- base(X), NOT even2(X).
    even4(X) :- base(X), NOT odd3(X).
  )");
  // odd1 = {3,4}; even2 = {1,2}; odd3 = {3,4}; even4 = {1,2}.
  EXPECT_EQ(db.RelationSize(Intern("odd3")), 2u);
  EXPECT_TRUE(db.Contains(F(Intern("even4"), {Term::Int(1)})));
  EXPECT_FALSE(db.Contains(F(Intern("even4"), {Term::Int(3)})));
}

}  // namespace
}  // namespace deduce
