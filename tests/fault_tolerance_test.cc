// Fault-tolerance coverage: the end-to-end reliable transport
// (ACK/retransmit/dedup), failure-aware sweep repair, and crash-reboot
// churn. The scenarios mirror DESIGN.md "Fault model & recovery" and
// docs/FAULTS.md.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "test_util.h"

namespace deduce {
namespace {

constexpr char kTwoStreamJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  return link;
}

struct RunOutcome {
  std::set<std::string> facts;
  EngineStats stats;
  uint64_t nodes_recovered = 0;
};

/// Injects `pairs` (r, s) pairs 600 ms apart — r at `r_node`, s at
/// `s_node`, key k — and runs to quiescence. The loss-free expected output
/// is t(k, r_node, s_node) for every k.
RunOutcome RunTwoStreamJoin(const Topology& topo, const LinkModel& link,
                            const TransportOptions& transport, int pairs,
                            NodeId r_node, NodeId s_node, uint64_t seed,
                            const FaultPlan* faults = nullptr) {
  RunOutcome out;
  auto program = ParseProgram(kTwoStreamJoin);
  EXPECT_TRUE(program.ok()) << program.status();
  Network net(topo, link, seed);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  EngineOptions options;
  options.transport = transport;
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  if (!engine.ok()) return out;
  int seq = 0;
  for (int k = 0; k < pairs; ++k) {
    net.sim().RunUntil(net.sim().now() + 300'000);
    EXPECT_TRUE((*engine)
                    ->Inject(r_node, StreamOp::kInsert,
                             Fact(Intern("r"), {Term::Int(k),
                                                Term::Int(r_node),
                                                Term::Int(seq++)}))
                    .ok());
    net.sim().RunUntil(net.sim().now() + 300'000);
    EXPECT_TRUE((*engine)
                    ->Inject(s_node, StreamOp::kInsert,
                             Fact(Intern("s"), {Term::Int(k),
                                                Term::Int(s_node),
                                                Term::Int(seq++)}))
                    .ok());
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.facts.insert(f.ToString());
  }
  out.stats = (*engine)->stats();
  out.nodes_recovered = net.stats().nodes_recovered;
  return out;
}

std::set<std::string> ExpectedPairs(int pairs, NodeId r_node, NodeId s_node) {
  std::set<std::string> expected;
  for (int k = 0; k < pairs; ++k) {
    expected.insert("t(" + std::to_string(k) + ", " +
                    std::to_string(r_node) + ", " + std::to_string(s_node) +
                    ")");
  }
  return expected;
}

TEST(FaultToleranceTest, CleanRunHasZeroFaultCounters) {
  TransportOptions transport;
  transport.reliable = true;
  RunOutcome out = RunTwoStreamJoin(Topology::Grid(5), ExactLink(), transport,
                                    /*pairs=*/3, /*r_node=*/2, /*s_node=*/22,
                                    /*seed=*/TestSeed(5));
  EXPECT_TRUE(out.stats.errors.empty());
  EXPECT_EQ(out.facts, ExpectedPairs(3, 2, 22));
  // The transport carried traffic...
  EXPECT_GT(out.stats.acks_sent, 0u);
  // ...but a loss-free, failure-free run never needs any of the fault
  // machinery: every ack arrives before its RTO.
  EXPECT_EQ(out.stats.acks_sent, out.stats.acks_received);
  EXPECT_EQ(out.stats.retransmissions, 0u);
  EXPECT_EQ(out.stats.duplicates_suppressed, 0u);
  EXPECT_EQ(out.stats.gave_up_messages, 0u);
  EXPECT_EQ(out.stats.rerouted_hops, 0u);
  EXPECT_EQ(out.stats.skipped_sweep_nodes, 0u);
  EXPECT_EQ(out.stats.skipped_store_nodes, 0u);
  EXPECT_EQ(out.stats.repaired_messages, 0u);
}

TEST(FaultToleranceTest, LossyRunConvergesToLossFreeReference) {
  LinkModel link = ExactLink();
  link.loss_rate = 0.15;
  link.retries = 1;
  TransportOptions transport;
  transport.reliable = true;
  transport.max_retries = 6;
  RunOutcome lossy = RunTwoStreamJoin(Topology::Grid(5), link, transport,
                                      /*pairs=*/5, /*r_node=*/2,
                                      /*s_node=*/22, /*seed=*/TestSeed(11));
  // Lost store/pass/result messages were retransmitted until acked: the
  // lossy run derives exactly what a loss-free run derives.
  EXPECT_TRUE(lossy.stats.errors.empty());
  EXPECT_EQ(lossy.facts, ExpectedPairs(5, 2, 22));
  // Loss really happened and the transport really worked for it. (Only
  // >=: on some seeds every lost hop is a data hop, so all acks arrive.)
  EXPECT_GT(lossy.stats.retransmissions, 0u);
  EXPECT_GE(lossy.stats.acks_sent, lossy.stats.acks_received);
}

TEST(FaultToleranceTest, LossyRunIsDeterministic) {
  LinkModel link = ExactLink();
  link.loss_rate = 0.2;
  link.retries = 0;
  TransportOptions transport;
  transport.reliable = true;
  transport.max_retries = 8;
  auto run = [&] {
    return RunTwoStreamJoin(Topology::Grid(4), link, transport, /*pairs=*/3,
                            /*r_node=*/1, /*s_node=*/14, /*seed=*/TestSeed(77));
  };
  RunOutcome a = run();
  RunOutcome b = run();
  EXPECT_EQ(a.facts, b.facts);
  EXPECT_EQ(a.stats.retransmissions, b.stats.retransmissions);
  EXPECT_EQ(a.stats.acks_sent, b.stats.acks_sent);
  EXPECT_EQ(a.stats.acks_received, b.stats.acks_received);
  EXPECT_EQ(a.stats.duplicates_suppressed, b.stats.duplicates_suppressed);
  EXPECT_EQ(a.stats.gave_up_messages, b.stats.gave_up_messages);
}

TEST(FaultToleranceTest, RetransmitsAreDeduplicatedAtTheReceiver) {
  // High ack-path loss forces retransmits whose originals often did get
  // through: the receiver must suppress the duplicates (each of which it
  // re-acks) instead of re-processing.
  LinkModel link = ExactLink();
  link.loss_rate = 0.35;
  link.retries = 0;
  TransportOptions transport;
  transport.reliable = true;
  transport.max_retries = 10;
  RunOutcome out = RunTwoStreamJoin(Topology::Grid(4), link, transport,
                                    /*pairs=*/4, /*r_node=*/1, /*s_node=*/14,
                                    /*seed=*/3);
  EXPECT_GT(out.stats.duplicates_suppressed, 0u);
  EXPECT_GT(out.stats.retransmissions, 0u);
  // Duplicate deliveries must not duplicate results: every t fact exists
  // at most once per key (ResultFacts unions home stores; a re-processed
  // insert would fault or double-derive, both caught by the checks below).
  EXPECT_TRUE(out.stats.errors.empty());
  for (int k = 0; k < 4; ++k) {
    std::string want = "t(" + std::to_string(k) + ", 1, 14)";
    EXPECT_LE(out.facts.count(want), 1u);
  }
}

TEST(FaultToleranceTest, FailedSweepColumnNodesAreReplacedByBandAlternates) {
  // 10x10 grid. s launches its column sweep from x = 5; the sweep visits
  // (5, y) for every band y. Three interior nodes on that column are dead
  // — exactly the bands where the matching r tuples live. With the
  // transport on, each give-up replaces the dead band representative with
  // an alive same-band node, which holds the same row replicas, so every
  // pair still derives.
  Topology topo = Topology::Grid(10);
  FaultPlan faults;
  faults.Fail(0, topo.GridNode(5, 3));
  faults.Fail(0, topo.GridNode(5, 5));
  faults.Fail(0, topo.GridNode(5, 7));

  LinkModel link = ExactLink();
  std::vector<std::pair<NodeId, NodeId>> pairs = {
      {topo.GridNode(0, 3), topo.GridNode(5, 0)},
      {topo.GridNode(0, 5), topo.GridNode(5, 0)},
      {topo.GridNode(0, 7), topo.GridNode(5, 0)},
  };

  auto run_one = [&](const TransportOptions& transport, int k,
                     NodeId r_node, NodeId s_node) {
    return RunTwoStreamJoin(topo, link, transport, /*pairs=*/1, r_node,
                            s_node, /*seed=*/TestSeed(static_cast<uint64_t>(40 + k)),
                            &faults);
  };

  TransportOptions off;  // reliable = false
  TransportOptions on;
  on.reliable = true;

  int derived_off = 0;
  int derived_on = 0;
  uint64_t skipped = 0, repaired = 0, gave_up = 0;
  for (int k = 0; k < static_cast<int>(pairs.size()); ++k) {
    auto [r_node, s_node] = pairs[static_cast<size_t>(k)];
    std::string want = "t(0, " + std::to_string(r_node) + ", " +
                       std::to_string(s_node) + ")";
    derived_off += run_one(off, k, r_node, s_node).facts.count(want) ? 1 : 0;
    RunOutcome out = run_one(on, k, r_node, s_node);
    derived_on += out.facts.count(want) ? 1 : 0;
    skipped += out.stats.skipped_sweep_nodes;
    repaired += out.stats.repaired_messages;
    gave_up += out.stats.gave_up_messages;
  }
  // Without the transport the sweep dies at the first dead column node.
  EXPECT_EQ(derived_off, 0);
  // With it, every pair survives via band-alternate repair.
  EXPECT_EQ(derived_on, 3);
  EXPECT_GT(gave_up, 0u);
  EXPECT_GT(repaired, 0u);
  EXPECT_GT(skipped, 0u);
}

TEST(FaultToleranceTest, CrashRebootChurnDoesNotWedgeTheEngine) {
  // Three interior nodes crash and reboot (volatile state lost), staggered
  // across the run. Injections live on the top and bottom rows, so the
  // rebooted nodes never hold data the joins need: every pair derives.
  Topology topo = Topology::Grid(5);
  FaultPlan churn = FaultPlan::Churn(
      {topo.GridNode(2, 1), topo.GridNode(2, 2), topo.GridNode(2, 3)},
      /*first_fail=*/400'000, /*downtime=*/500'000, /*stagger=*/700'000);
  TransportOptions transport;
  transport.reliable = true;
  RunOutcome out = RunTwoStreamJoin(topo, ExactLink(), transport,
                                    /*pairs=*/5, /*r_node=*/topo.GridNode(0, 0),
                                    /*s_node=*/topo.GridNode(4, 4),
                                    /*seed=*/TestSeed(9), &churn);
  EXPECT_TRUE(out.stats.errors.empty());
  EXPECT_EQ(out.nodes_recovered, 3u);
  EXPECT_EQ(out.facts,
            ExpectedPairs(5, topo.GridNode(0, 0), topo.GridNode(4, 4)));
}

/// Retransmissions observed within a fixed window while one storage-band
/// node is permanently blackholed (links cut both ways, never healed).
uint64_t RetransmitsTowardDeadPeer(double rto_backoff, SimTime rto_max,
                                   uint64_t seed) {
  auto program = ParseProgram(kTwoStreamJoin);
  EXPECT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), seed);
  std::vector<NodeId> dead = {3};
  std::vector<NodeId> rest;
  for (NodeId n = 0; n < 16; ++n) {
    if (n != 3) rest.push_back(n);
  }
  FaultPlan plan;
  plan.CutLinks(0, rest, dead).CutLinks(0, dead, rest);
  net.ApplyFaultPlan(plan);
  EngineOptions options;
  options.transport.reliable = true;
  options.transport.max_retries = 30;  // deep budget: the schedule decides
  options.transport.rto_backoff = rto_backoff;
  options.transport.rto_max = rto_max;
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  if (!engine.ok()) return 0;
  for (int k = 0; k < 2; ++k) {
    (void)(*engine)->Inject(
        1, StreamOp::kInsert,
        Fact(Intern("r"), {Term::Int(k), Term::Int(1), Term::Int(k)}));
  }
  net.sim().RunUntil(2'000'000);  // fixed 2 s observation window
  return (*engine)->stats().retransmissions;
}

TEST(FaultToleranceTest, BackoffPreventsRetransmitStormsTowardDeadPeer) {
  // Old policy: fixed RTO (backoff 1.0, no cap) hammers a partitioned
  // peer — the whole retry budget burns in the first fraction of the
  // window. Exponential backoff with the auto cap spends the same budget
  // over a much longer horizon, so the storm seen on the air in any fixed
  // window is strictly smaller.
  uint64_t fixed = RetransmitsTowardDeadPeer(/*rto_backoff=*/1.0,
                                             /*rto_max=*/0, TestSeed(17));
  uint64_t backoff = RetransmitsTowardDeadPeer(/*rto_backoff=*/2.0,
                                               /*rto_max=*/-1, TestSeed(17));
  EXPECT_GT(fixed, 0u);
  EXPECT_GT(backoff, 0u);  // the peer is still being probed...
  EXPECT_LT(backoff, fixed / 2);  // ...but no longer flooded
}

/// Runs the lossy reliable workload and returns (results, stats) with
/// batched delivery switched on or off.
std::pair<std::set<std::string>, EngineStats> LossyReliableRun(bool batched,
                                                               uint64_t seed) {
  auto program = ParseProgram(kTwoStreamJoin);
  EXPECT_TRUE(program.ok()) << program.status();
  LinkModel link = ExactLink();
  link.loss_rate = 0.15;
  link.retries = 1;
  Network net(Topology::Grid(5), link, seed);
  net.EnableBatchedDelivery(batched);
  EngineOptions options;
  options.transport.reliable = true;
  options.transport.max_retries = 8;
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  std::pair<std::set<std::string>, EngineStats> out;
  if (!engine.ok()) return out;
  int seq = 0;
  for (int k = 0; k < 4; ++k) {
    net.sim().RunUntil(net.sim().now() + 300'000);
    (void)(*engine)->Inject(
        2, StreamOp::kInsert,
        Fact(Intern("r"), {Term::Int(k), Term::Int(2), Term::Int(seq++)}));
    net.sim().RunUntil(net.sim().now() + 300'000);
    (void)(*engine)->Inject(
        22, StreamOp::kInsert,
        Fact(Intern("s"), {Term::Int(k), Term::Int(22), Term::Int(seq++)}));
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.first.insert(f.ToString());
  }
  out.second = (*engine)->stats();
  return out;
}

TEST(FaultToleranceTest, BatchedDeliveryIsTransparentToReliableTransport) {
  // Coalescing same-tick frames per (src, dst) edge must not perturb the
  // ARQ machinery: identical delivery instants and in-batch order mean an
  // identical ack/retransmit/dedup transcript, not merely the same final
  // result set.
  auto plain = LossyReliableRun(/*batched=*/false, TestSeed(23));
  auto coalesced = LossyReliableRun(/*batched=*/true, TestSeed(23));
  EXPECT_EQ(plain.first, coalesced.first);
  EXPECT_GT(plain.second.retransmissions, 0u);  // loss really happened
  EXPECT_EQ(plain.second.retransmissions, coalesced.second.retransmissions);
  EXPECT_EQ(plain.second.acks_sent, coalesced.second.acks_sent);
  EXPECT_EQ(plain.second.acks_received, coalesced.second.acks_received);
  EXPECT_EQ(plain.second.duplicates_suppressed,
            coalesced.second.duplicates_suppressed);
  EXPECT_EQ(plain.second.gave_up_messages, coalesced.second.gave_up_messages);
}

}  // namespace
}  // namespace deduce
