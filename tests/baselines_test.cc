#include <gtest/gtest.h>

#include "deduce/baselines/procedural_spt.h"
#include "deduce/engine/aggregation.h"
#include "deduce/routing/routing.h"

namespace deduce {
namespace {

TEST(ProceduralSptTest, ComputesBfsDistancesOnGrid) {
  Topology topo = Topology::Grid(5);
  Network net(topo, LinkModel{}, 1);
  ProceduralSptResult result = RunProceduralSpt(&net, /*root=*/0);
  RoutingTable rt(&topo);
  for (int v = 0; v < topo.node_count(); ++v) {
    EXPECT_EQ(result.distance[static_cast<size_t>(v)], rt.HopDistance(v, 0))
        << "node " << v;
    if (v != 0) {
      NodeId p = result.parent[static_cast<size_t>(v)];
      EXPECT_TRUE(topo.AreNeighbors(v, p));
      EXPECT_EQ(result.distance[static_cast<size_t>(p)],
                result.distance[static_cast<size_t>(v)] - 1);
    }
  }
  EXPECT_GT(result.total_messages, 0u);
}

TEST(ProceduralSptTest, WorksOnRandomTopology) {
  Rng rng(5);
  Topology topo = Topology::RandomGeometric(30, 8, 8, 2.5, &rng);
  ASSERT_TRUE(topo.IsConnected());
  Network net(topo, LinkModel{}, 2);
  ProceduralSptResult result = RunProceduralSpt(&net, 0);
  RoutingTable rt(&topo);
  for (int v = 0; v < topo.node_count(); ++v) {
    EXPECT_EQ(result.distance[static_cast<size_t>(v)], rt.HopDistance(v, 0));
  }
}

TEST(ProceduralSptTest, MessageCostLinearInEdges) {
  // Quiescent protocol cost is O(improvements * degree); on a grid with a
  // corner root, each node improves O(1) times.
  Topology topo = Topology::Grid(8);
  Network net(topo, LinkModel{}, 3);
  ProceduralSptResult result = RunProceduralSpt(&net, 0);
  // 64 nodes, <= 4 neighbors: a few announcements each.
  EXPECT_LT(result.total_messages, 64u * 4u * 4u);
}

TEST(TagAggregationTest, SumCountMinMaxAvg) {
  // Reading of node i is i; epoch 0.
  auto reader = [](NodeId id, int) -> std::optional<double> {
    return static_cast<double>(id);
  };
  struct Case {
    AggKind kind;
    double expected;
  };
  // Grid(4): ids 0..15. sum=120, count=16, min=0, max=15, avg=7.5.
  for (Case c : std::vector<Case>{{AggKind::kSum, 120},
                                  {AggKind::kCount, 16},
                                  {AggKind::kMin, 0},
                                  {AggKind::kMax, 15},
                                  {AggKind::kAvg, 7.5}}) {
    Network net(Topology::Grid(4), LinkModel{}, 7);
    TagAggregation::Options options;
    options.kind = c.kind;
    auto results = TagAggregation::Run(&net, options, reader);
    ASSERT_EQ(results.size(), 1u) << AggKindToString(c.kind);
    EXPECT_DOUBLE_EQ(results[0].value, c.expected)
        << AggKindToString(c.kind);
  }
}

TEST(TagAggregationTest, MultipleEpochs) {
  auto reader = [](NodeId, int epoch) -> std::optional<double> {
    return static_cast<double>(epoch + 1);
  };
  Network net(Topology::Grid(3), LinkModel{}, 8);
  TagAggregation::Options options;
  options.kind = AggKind::kSum;
  options.epochs = 3;
  auto results = TagAggregation::Run(&net, options, reader);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].value, 9.0);
  EXPECT_DOUBLE_EQ(results[1].value, 18.0);
  EXPECT_DOUBLE_EQ(results[2].value, 27.0);
}

TEST(TagAggregationTest, MissingReadingsSkipped) {
  auto reader = [](NodeId id, int) -> std::optional<double> {
    if (id % 2 == 0) return std::nullopt;
    return 1.0;
  };
  Network net(Topology::Grid(4), LinkModel{}, 9);
  TagAggregation::Options options;
  options.kind = AggKind::kCount;
  auto results = TagAggregation::Run(&net, options, reader);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].value, 8.0);  // 8 odd ids in 0..15
}

TEST(TagAggregationTest, MessageCostIsOnePerNodePerEpoch) {
  auto reader = [](NodeId, int) -> std::optional<double> { return 1.0; };
  Network net(Topology::Grid(5), LinkModel{}, 10);
  TagAggregation::Options options;
  options.kind = AggKind::kSum;
  auto results = TagAggregation::Run(&net, options, reader);
  ASSERT_EQ(results.size(), 1u);
  // TAG sends exactly one partial per non-root node; messages = sum of
  // tree-path single hops = 24 (every non-root node sends one message to
  // its parent, a direct neighbor).
  EXPECT_EQ(net.stats().TotalMessages(), 24u);
}

}  // namespace
}  // namespace deduce
