// Overload-robustness coverage: per-node resource budgets
// (EngineOptions::budget), admission control and load shedding with sound
// degradation, and the storm/straggler/squeeze chaos axes. See
// docs/FAULTS.md "Overload and shedding".

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "test_util.h"

namespace deduce {
namespace {

constexpr char kTwoStreamJoin[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  return link;
}

struct BudgetRun {
  std::set<std::string> results;
  std::set<std::string> undegraded;
  EngineStats stats;
  NetworkStats net;
};

/// Injects `pairs` matching (r, s) pairs — r at `r_node`, s at `s_node`,
/// key k mod `keys` — spaced 300 ms apart, and runs to quiescence.
BudgetRun RunJoinWorkload(const BudgetOptions& budget, int pairs, int keys,
                          NodeId r_node, NodeId s_node,
                          const FaultPlan* faults = nullptr,
                          uint64_t seed = TestSeed(21)) {
  BudgetRun out;
  auto program = ParseProgram(kTwoStreamJoin);
  EXPECT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), seed);
  if (faults != nullptr) net.ApplyFaultPlan(*faults);
  EngineOptions options;
  options.transport.reliable = true;
  options.budget = budget;
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  if (!engine.ok()) return out;
  int seq = 0;
  for (int k = 0; k < pairs; ++k) {
    net.sim().RunUntil(net.sim().now() + 300'000);
    (void)(*engine)->Inject(r_node, StreamOp::kInsert,
                            Fact(Intern("r"), {Term::Int(k % keys),
                                               Term::Int(r_node),
                                               Term::Int(seq++)}));
    net.sim().RunUntil(net.sim().now() + 300'000);
    (void)(*engine)->Inject(s_node, StreamOp::kInsert,
                            Fact(Intern("s"), {Term::Int(k % keys),
                                               Term::Int(s_node),
                                               Term::Int(seq++)}));
  }
  net.sim().Run();
  for (const Fact& f : (*engine)->ResultFacts(Intern("t"))) {
    out.results.insert(f.ToString());
  }
  Database undeg = (*engine)->UndegradedResultDatabase();
  for (SymbolId pred : undeg.Predicates()) {
    for (const Fact& f : undeg.Relation(pred)) {
      out.undegraded.insert(f.ToString());
    }
  }
  out.stats = (*engine)->stats();
  out.net = net.stats();
  return out;
}

/// Every join result the workload above can legitimately produce.
std::set<std::string> FullJoin(int keys, NodeId r_node, NodeId s_node) {
  std::set<std::string> out;
  for (int k = 0; k < keys; ++k) {
    out.insert(Fact(Intern("t"), {Term::Int(k), Term::Int(r_node),
                                  Term::Int(s_node)})
                   .ToString());
  }
  return out;
}

TEST(BudgetTest, SqueezeShrinksEveryEnabledCapWithFloorOne) {
  BudgetOptions b;
  b.max_replicas_per_pred = 10;
  b.max_inflight = 3;
  b.max_eval_work = 1;
  b.max_ingress = 0;  // disabled caps stay disabled
  b.Squeeze(0.5);
  EXPECT_EQ(b.max_replicas_per_pred, 5u);
  EXPECT_EQ(b.max_inflight, 1u);
  EXPECT_EQ(b.max_eval_work, 1u);  // floor: a squeeze never disables a cap
  EXPECT_EQ(b.max_ingress, 0u);   // 0 = unlimited is preserved
}

TEST(BudgetTest, GenerousBudgetsAreBehaviorIdenticalToBudgetsOff) {
  BudgetOptions off;  // default: disabled
  BudgetOptions generous;
  generous.enabled = true;
  generous.max_replicas_per_pred = 10'000;
  generous.max_inflight = 10'000;
  generous.max_eval_work = 10'000;
  generous.max_ingress = 10'000;
  BudgetRun a = RunJoinWorkload(off, 6, 6, 1, 14);
  BudgetRun b = RunJoinWorkload(generous, 6, 6, 1, 14);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.net.TotalMessages(), b.net.TotalMessages());
  EXPECT_EQ(b.stats.sheds, 0u);
  EXPECT_EQ(b.stats.ingress_rejects, 0u);
  EXPECT_EQ(b.stats.budget_evictions, 0u);
}

TEST(BudgetTest, IngressBudgetRejectsBackToBackInjections) {
  auto program = ParseProgram(kTwoStreamJoin);
  ASSERT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), TestSeed(33));
  EngineOptions options;
  options.budget.enabled = true;
  options.budget.max_ingress = 1;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // Two injections with no simulated time in between: the first holds the
  // only ingress slot until its storage+join launch completes, so the
  // second is refused at the front door with a sender-visible error.
  Status first = (*engine)->Inject(
      0, StreamOp::kInsert,
      Fact(Intern("r"), {Term::Int(1), Term::Int(0), Term::Int(1)}));
  EXPECT_TRUE(first.ok()) << first;
  Status second = (*engine)->Inject(
      0, StreamOp::kInsert,
      Fact(Intern("r"), {Term::Int(2), Term::Int(0), Term::Int(2)}));
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted) << second;
  EXPECT_EQ((*engine)->stats().ingress_rejects, 1u);
  // Once the queue drains, injection works again.
  net.sim().Run();
  Status third = (*engine)->Inject(
      0, StreamOp::kInsert,
      Fact(Intern("r"), {Term::Int(3), Term::Int(0), Term::Int(3)}));
  EXPECT_TRUE(third.ok()) << third;
  net.sim().Run();
}

TEST(BudgetTest, RejectInjectionPolicyRefusesWhenReplicaStoreIsFull) {
  auto program = ParseProgram(kTwoStreamJoin);
  ASSERT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), TestSeed(33));
  EngineOptions options;
  options.transport.reliable = true;
  options.budget.enabled = true;
  options.budget.max_replicas_per_pred = 2;
  options.budget.policy = ShedPolicy::kRejectInjection;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  int rejected = 0;
  for (int i = 0; i < 8; ++i) {
    Status st = (*engine)->Inject(
        1, StreamOp::kInsert,
        Fact(Intern("r"), {Term::Int(i), Term::Int(1), Term::Int(i)}));
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
      ++rejected;
    }
    net.sim().Run();  // let each storage walk finish before the next
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ((*engine)->stats().ingress_rejects,
            static_cast<uint64_t>(rejected));
  // Refused injections never entered: nothing was shed inside the engine.
  EXPECT_EQ((*engine)->stats().sheds, 0u);
}

TEST(BudgetTest, ShedNewestStaysSoundAndTaintsDownstreamResults) {
  auto program = ParseProgram(kTwoStreamJoin);
  ASSERT_TRUE(program.ok()) << program.status();
  Network net(Topology::Grid(4), ExactLink(), TestSeed(33));
  EngineOptions options;
  options.transport.reliable = true;
  options.budget.enabled = true;
  options.budget.max_replicas_per_pred = 2;
  options.budget.policy = ShedPolicy::kShedNewest;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  // Phase 1: flood r at one node until its band stores shed (cap 2).
  for (int i = 0; i < 6; ++i) {
    (void)(*engine)->Inject(
        1, StreamOp::kInsert,
        Fact(Intern("r"), {Term::Int(1), Term::Int(1), Term::Int(i)}));
    net.sim().Run();
  }
  EXPECT_GT((*engine)->stats().sheds, 0u);
  // Phase 2: the matching s is admitted (its store is empty), so the join
  // runs — through a store that already discarded replicas. The result is
  // sound but must be flagged degraded, and the undegraded projection
  // must exclude it.
  Status st = (*engine)->Inject(
      1, StreamOp::kInsert,
      Fact(Intern("s"), {Term::Int(1), Term::Int(1), Term::Int(100)}));
  ASSERT_TRUE(st.ok()) << st;
  net.sim().Run();
  std::vector<Fact> results = (*engine)->ResultFacts(Intern("t"));
  ASSERT_FALSE(results.empty());
  Fact expected(Intern("t"), {Term::Int(1), Term::Int(1), Term::Int(1)});
  for (const Fact& f : results) {
    EXPECT_EQ(f.ToString(), expected.ToString()) << "phantom result";
  }
  EXPECT_GT((*engine)->stats().degraded_results, 0u);
  Database undeg = (*engine)->UndegradedResultDatabase();
  size_t undegraded = 0;
  for (SymbolId pred : undeg.Predicates()) {
    undegraded += undeg.Relation(pred).size();
  }
  EXPECT_EQ(undegraded, 0u);
}

TEST(BudgetTest, FarthestWindowPolicyEvictsOldestAndCountsIt) {
  BudgetOptions b;
  b.enabled = true;
  b.max_replicas_per_pred = 2;
  b.policy = ShedPolicy::kShedFarthestWindow;
  BudgetRun run = RunJoinWorkload(b, 10, 10, 1, 1);
  EXPECT_GT(run.stats.budget_evictions, 0u);
  std::set<std::string> full = FullJoin(10, 1, 1);
  for (const std::string& f : run.results) {
    EXPECT_TRUE(full.count(f)) << "phantom result " << f;
  }
}

TEST(BudgetTest, EvalBudgetShedsJoinWorkAsDegraded) {
  BudgetOptions b;
  b.enabled = true;
  b.max_eval_work = 1;
  // Same key every time: each arriving s matches many stored r replicas,
  // so a single storage event wants several join launches and the cap
  // sheds the rest.
  BudgetRun run = RunJoinWorkload(b, 6, 1, 1, 14);
  EXPECT_GT(run.stats.sheds, 0u);
  std::set<std::string> full = FullJoin(1, 1, 14);
  for (const std::string& f : run.results) {
    EXPECT_TRUE(full.count(f)) << "phantom result " << f;
  }
}

TEST(BudgetTest, SlowNodeStallsDeliveriesButStillConverges) {
  FaultPlan plan;
  plan.SlowNode(0, /*node=*/5, /*stall=*/20'000);
  BudgetOptions off;
  BudgetRun stalled = RunJoinWorkload(off, 4, 4, 1, 14, &plan);
  BudgetRun normal = RunJoinWorkload(off, 4, 4, 1, 14);
  EXPECT_GT(stalled.net.deliveries_stalled, 0u);
  EXPECT_EQ(normal.net.deliveries_stalled, 0u);
  // A straggler delays traffic; it must not change the answer.
  EXPECT_EQ(stalled.results, normal.results);
}

TEST(BudgetTest, MemSqueezeShrinksBudgetsMidRunViaFaultHook) {
  FaultPlan plan;
  plan.MemSqueeze(1'500'000, 0.5);
  BudgetOptions b;
  b.enabled = true;
  b.max_replicas_per_pred = 100;
  b.max_ingress = 100;
  BudgetRun run = RunJoinWorkload(b, 6, 6, 1, 14, &plan);
  EXPECT_EQ(run.stats.budget_squeezes, 1u);
  // With budgets off the hook is never registered: the squeeze is inert.
  BudgetOptions off;
  BudgetRun quiet = RunJoinWorkload(off, 6, 6, 1, 14, &plan);
  EXPECT_EQ(quiet.stats.budget_squeezes, 0u);
}

TEST(BudgetTest, ShedRunsAreDeterministic) {
  BudgetOptions b;
  b.enabled = true;
  b.max_replicas_per_pred = 2;
  b.max_eval_work = 4;
  BudgetRun a = RunJoinWorkload(b, 10, 10, 1, 1, nullptr, 1234);
  BudgetRun c = RunJoinWorkload(b, 10, 10, 1, 1, nullptr, 1234);
  EXPECT_EQ(a.results, c.results);
  EXPECT_EQ(a.undegraded, c.undegraded);
  EXPECT_EQ(a.stats.sheds, c.stats.sheds);
  EXPECT_EQ(a.net.TotalMessages(), c.net.TotalMessages());
}

}  // namespace
}  // namespace deduce
