#include "deduce/eval/incremental.h"

#include <gtest/gtest.h>

#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/eval/seminaive.h"

namespace deduce {
namespace {

Fact F(const std::string& pred, std::vector<Term> args) {
  return Fact(Intern(pred), std::move(args));
}

StreamEvent Insert(const Fact& f, NodeId node, Timestamp t, uint32_t seq) {
  StreamEvent e;
  e.op = StreamOp::kInsert;
  e.fact = f;
  e.id = TupleId{node, t, seq};
  e.time = t;
  return e;
}

StreamEvent Delete(const Fact& f, Timestamp t) {
  StreamEvent e;
  e.op = StreamOp::kDelete;
  e.fact = f;
  e.time = t;
  return e;
}

std::unique_ptr<IncrementalEngine> Make(const std::string& text,
                                        IncrementalOptions opts = {}) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  auto engine = IncrementalEngine::Create(*program, opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

/// From-scratch recomputation over the currently-alive base facts: the
/// ground truth every incremental strategy must match.
Database Recompute(const std::string& text, const std::vector<Fact>& base) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  auto db = EvaluateProgram(*program, base);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr char kJoinProgram[] = R"(
  .decl r/2 input.
  .decl s/2 input.
  t(X, Z) :- r(X, Y), s(Y, Z).
)";

TEST(IncrementalTest, InsertThenMatchAppears) {
  auto engine = Make(kJoinProgram);
  std::vector<StreamEvent> out;
  ASSERT_TRUE(
      engine->Apply(Insert(F("r", {Term::Int(1), Term::Int(2)}), 0, 1, 0),
                    &out)
          .ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 1, 2, 0),
                    &out)
          .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, StreamOp::kInsert);
  EXPECT_EQ(out[0].fact, F("t", {Term::Int(1), Term::Int(3)}));
}

TEST(IncrementalTest, DeleteRemovesDerived) {
  auto engine = Make(kJoinProgram);
  std::vector<StreamEvent> out;
  Fact r = F("r", {Term::Int(1), Term::Int(2)});
  Fact s = F("s", {Term::Int(2), Term::Int(3)});
  ASSERT_TRUE(engine->Apply(Insert(r, 0, 1, 0), &out).ok());
  ASSERT_TRUE(engine->Apply(Insert(s, 1, 2, 0), &out).ok());
  out.clear();
  ASSERT_TRUE(engine->Apply(Delete(r, 3), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, StreamOp::kDelete);
  EXPECT_EQ(out[0].fact, F("t", {Term::Int(1), Term::Int(3)}));
  EXPECT_TRUE(engine->AliveFacts(Intern("t")).empty());
}

TEST(IncrementalTest, MultipleDerivationsSurviveSingleDeletion) {
  auto engine = Make(kJoinProgram);
  std::vector<StreamEvent> out;
  // Two ways to derive t(1, 3).
  Fact r1 = F("r", {Term::Int(1), Term::Int(2)});
  Fact r2 = F("r", {Term::Int(1), Term::Int(7)});
  ASSERT_TRUE(engine->Apply(Insert(r1, 0, 1, 0), &out).ok());
  ASSERT_TRUE(engine->Apply(Insert(r2, 0, 1, 1), &out).ok());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 1, 2, 0),
                    &out)
          .ok());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(7), Term::Int(3)}), 1, 2, 1),
                    &out)
          .ok());
  out.clear();
  ASSERT_TRUE(engine->Apply(Delete(r1, 3), &out).ok());
  // t(1, 3) still has the derivation through r2.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine->AliveFacts(Intern("t")).size(), 1u);
  // Deleting the second support kills it.
  ASSERT_TRUE(engine->Apply(Delete(r2, 4), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, StreamOp::kDelete);
}

TEST(IncrementalTest, DuplicateInsertIsNoOp) {
  auto engine = Make(kJoinProgram);
  std::vector<StreamEvent> out;
  Fact r = F("r", {Term::Int(1), Term::Int(2)});
  ASSERT_TRUE(engine->Apply(Insert(r, 0, 1, 0), &out).ok());
  ASSERT_TRUE(engine->Apply(Insert(r, 5, 2, 0), &out).ok());  // dup, other id
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 1, 3, 0),
                    &out)
          .ok());
  ASSERT_TRUE(engine->Apply(Delete(r, 4), &out).ok());
  EXPECT_TRUE(engine->AliveFacts(Intern("t")).empty());
}

TEST(IncrementalTest, InsertIntoDerivedStreamRejected) {
  auto engine = Make(kJoinProgram);
  Status st =
      engine->Apply(Insert(F("t", {Term::Int(1), Term::Int(2)}), 0, 1, 0),
                    nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

constexpr char kNegProgram[] = R"(
  .decl e/2 input.
  .decl fr/2 input.
  cov(L, T) :- e(L, T), fr(L2, T), dist(L, L2) <= 5.
  uncov(L, T) :- e(L, T), NOT cov(L, T).
)";

TEST(IncrementalTest, NegationInsertRetractsDerived) {
  auto engine = Make(kNegProgram);
  std::vector<StreamEvent> out;
  Fact enemy = F("e", {Term::Function("loc", {Term::Int(0), Term::Int(0)}),
                       Term::Int(1)});
  ASSERT_TRUE(engine->Apply(Insert(enemy, 0, 1, 0), &out).ok());
  // No friendly vehicle: uncovered alert fires.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(SymbolName(out[0].fact.predicate()), "uncov");
  out.clear();
  // A friendly arrives within distance 5: cov appears, uncov retracts.
  Fact friendly = F(
      "fr", {Term::Function("loc", {Term::Int(3), Term::Int(4)}), Term::Int(1)});
  ASSERT_TRUE(engine->Apply(Insert(friendly, 1, 2, 0), &out).ok());
  std::set<std::string> names;
  for (const StreamEvent& e : out) {
    names.insert((e.op == StreamOp::kInsert ? "+" : "-") +
                 SymbolName(e.fact.predicate()));
  }
  EXPECT_TRUE(names.count("+cov"));
  EXPECT_TRUE(names.count("-uncov"));
  EXPECT_TRUE(engine->AliveFacts(Intern("uncov")).empty());
  out.clear();
  // Friendly leaves: uncov comes back.
  ASSERT_TRUE(engine->Apply(Delete(friendly, 3), &out).ok());
  EXPECT_EQ(engine->AliveFacts(Intern("uncov")).size(), 1u);
}

TEST(IncrementalTest, WindowExpiryRetracts) {
  IncrementalOptions opts;
  auto engine = Make(R"(
    .decl r(x, y) input window 10.
    .decl s(y, z) input window 10.
    t(X, Z) :- r(X, Y), s(Y, Z).
  )",
                     opts);
  std::vector<StreamEvent> out;
  ASSERT_TRUE(
      engine->Apply(Insert(F("r", {Term::Int(1), Term::Int(2)}), 0, 100, 0),
                    &out)
          .ok());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 1, 105, 0),
                    &out)
          .ok());
  EXPECT_EQ(engine->AliveFacts(Intern("t")).size(), 1u);
  out.clear();
  // r expires at 110.
  ASSERT_TRUE(engine->AdvanceTo(111, &out).ok());
  EXPECT_TRUE(engine->AliveFacts(Intern("t")).empty());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, StreamOp::kDelete);
}

TEST(IncrementalTest, WindowJoinOnlyRecentTuplesMatch) {
  auto engine = Make(R"(
    .decl a(x) input window 10.
    .decl b(x) input window 10.
    both(X) :- a(X), b(X).
  )");
  std::vector<StreamEvent> out;
  ASSERT_TRUE(engine->Apply(Insert(F("a", {Term::Int(1)}), 0, 0, 0), &out).ok());
  // b(1) arrives after a(1) expired.
  ASSERT_TRUE(
      engine->Apply(Insert(F("b", {Term::Int(1)}), 1, 50, 0), &out).ok());
  EXPECT_TRUE(engine->AliveFacts(Intern("both")).empty());
}

// --- property tests: incremental == from-scratch at every step ---

struct Workload {
  std::string program;
  std::vector<StreamEvent> events;       // in time order
  std::vector<SymbolId> idb_predicates;  // to compare
};

Workload RandomJoinWorkload(uint64_t seed, bool with_negation) {
  Rng rng(seed);
  Workload w;
  w.program = with_negation ? R"(
    .decl r/2 input.
    .decl s/2 input.
    .decl blocked/1 input.
    t(X, Z) :- r(X, Y), s(Y, Z).
    ok(X, Z) :- t(X, Z), NOT blocked(X).
  )"
                            : kJoinProgram;
  w.idb_predicates = {Intern("t")};
  if (with_negation) w.idb_predicates.push_back(Intern("ok"));

  std::vector<Fact> alive;
  Timestamp t = 1;
  uint32_t seq = 0;
  for (int i = 0; i < 60; ++i, ++t) {
    bool del = !alive.empty() && rng.Bernoulli(0.3);
    if (del) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      w.events.push_back(Delete(alive[k], t));
      alive.erase(alive.begin() + static_cast<long>(k));
    } else {
      int which = static_cast<int>(rng.Uniform(0, with_negation ? 2 : 1));
      Fact f =
          which == 0
              ? F("r", {Term::Int(rng.Uniform(0, 4)), Term::Int(rng.Uniform(0, 4))})
              : which == 1
                    ? F("s", {Term::Int(rng.Uniform(0, 4)),
                              Term::Int(rng.Uniform(0, 4))})
                    : F("blocked", {Term::Int(rng.Uniform(0, 4))});
      w.events.push_back(Insert(f, 0, t, seq++));
      alive.push_back(f);
    }
  }
  return w;
}

void RunEquivalence(const Workload& w, MaintenanceStrategy strategy) {
  IncrementalOptions opts;
  opts.strategy = strategy;
  auto engine = Make(w.program, opts);
  std::vector<Fact> alive_base;
  for (size_t i = 0; i < w.events.size(); ++i) {
    const StreamEvent& ev = w.events[i];
    ASSERT_TRUE(engine->Apply(ev, nullptr).ok());
    if (ev.op == StreamOp::kInsert) {
      if (std::find(alive_base.begin(), alive_base.end(), ev.fact) ==
          alive_base.end()) {
        alive_base.push_back(ev.fact);
      }
    } else {
      auto it = std::find(alive_base.begin(), alive_base.end(), ev.fact);
      if (it != alive_base.end()) alive_base.erase(it);
    }
    Database expected = Recompute(w.program, alive_base);
    for (SymbolId pred : w.idb_predicates) {
      std::vector<Fact> got = engine->AliveFacts(pred);
      ASSERT_EQ(got.size(), expected.RelationSize(pred))
          << "step " << i << " pred " << SymbolName(pred) << " event "
          << ev.ToString();
      for (const Fact& f : got) {
        ASSERT_TRUE(expected.Contains(f)) << f.ToString() << " step " << i;
      }
    }
  }
}

TEST(IncrementalPropertyTest, DerivationsMatchRecomputePositive) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    RunEquivalence(RandomJoinWorkload(seed, false),
                   MaintenanceStrategy::kDerivations);
  }
}

TEST(IncrementalPropertyTest, DerivationsMatchRecomputeWithNegation) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    RunEquivalence(RandomJoinWorkload(seed, true),
                   MaintenanceStrategy::kDerivations);
  }
}

TEST(IncrementalPropertyTest, CountingMatchesRecomputePositive) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    RunEquivalence(RandomJoinWorkload(seed, false),
                   MaintenanceStrategy::kCounting);
  }
}

TEST(IncrementalPropertyTest, CountingMatchesRecomputeWithNegation) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    RunEquivalence(RandomJoinWorkload(seed, true),
                   MaintenanceStrategy::kCounting);
  }
}

TEST(IncrementalPropertyTest, RederivationMatchesRecomputePositive) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    RunEquivalence(RandomJoinWorkload(seed, false),
                   MaintenanceStrategy::kRederivation);
  }
}

TEST(IncrementalPropertyTest, RederivationOnRecursiveProgram) {
  // DRed handles recursion (that is its selling point): transitive closure
  // over a changing edge set.
  const char* program = R"(
    .decl edge/2 input.
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )";
  Rng rng(99);
  IncrementalOptions opts;
  opts.strategy = MaintenanceStrategy::kRederivation;
  auto engine = Make(program, opts);
  std::vector<Fact> alive;
  Timestamp t = 1;
  uint32_t seq = 0;
  for (int i = 0; i < 40; ++i, ++t) {
    if (!alive.empty() && rng.Bernoulli(0.35)) {
      size_t k = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(alive.size()) - 1));
      ASSERT_TRUE(engine->Apply(Delete(alive[k], t), nullptr).ok());
      alive.erase(alive.begin() + static_cast<long>(k));
    } else {
      Fact f = F("edge", {Term::Int(rng.Uniform(0, 5)),
                          Term::Int(rng.Uniform(0, 5))});
      ASSERT_TRUE(engine->Apply(Insert(f, 0, t, seq++), nullptr).ok());
      if (std::find(alive.begin(), alive.end(), f) == alive.end()) {
        alive.push_back(f);
      }
    }
    Database expected = Recompute(program, alive);
    std::vector<Fact> got = engine->AliveFacts(Intern("path"));
    ASSERT_EQ(got.size(), expected.RelationSize(Intern("path"))) << "step "
                                                                 << i;
    for (const Fact& f : got) ASSERT_TRUE(expected.Contains(f));
  }
}

TEST(IncrementalTest, CountingRejectsRecursion) {
  auto program = ParseProgram(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  ASSERT_TRUE(program.ok());
  IncrementalOptions opts;
  opts.strategy = MaintenanceStrategy::kCounting;
  auto engine = IncrementalEngine::Create(*program, opts);
  EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
}

TEST(IncrementalTest, RederivationRejectsNegation) {
  auto program = ParseProgram("a(X) :- b(X), NOT c(X).");
  ASSERT_TRUE(program.ok());
  IncrementalOptions opts;
  opts.strategy = MaintenanceStrategy::kRederivation;
  auto engine = IncrementalEngine::Create(*program, opts);
  EXPECT_EQ(engine.status().code(), StatusCode::kUnimplemented);
}

// --- the §IV-C limitation, demonstrated ---

TEST(IncrementalTest, CyclicDerivationsLeaveFactsWithoutProof) {
  // Transitive closure where a cycle (1 <-> 2) is reached only through a
  // seed edge 0 -> 2. Deleting the seed leaves path(0, 1) and path(0, 2)
  // supporting each other in a cycle that the set-of-derivations approach
  // cannot break: exactly the failure mode §IV-C describes for programs
  // that are not locally non-recursive. FactsWithoutValidProof detects it.
  auto engine = Make(R"(
    .decl edge/2 input.
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Fact e02 = F("edge", {Term::Int(0), Term::Int(2)});
  Fact e12 = F("edge", {Term::Int(1), Term::Int(2)});
  Fact e21 = F("edge", {Term::Int(2), Term::Int(1)});
  ASSERT_TRUE(engine->Apply(Insert(e02, 0, 1, 0), nullptr).ok());
  ASSERT_TRUE(engine->Apply(Insert(e12, 0, 2, 0), nullptr).ok());
  ASSERT_TRUE(engine->Apply(Insert(e21, 0, 3, 0), nullptr).ok());
  ASSERT_TRUE(engine->Apply(Delete(e02, 4), nullptr).ok());
  // path(0, 2) keeps derivation through path(0, 1) and vice versa: zombies.
  auto bad = engine->FactsWithoutValidProof();
  ASSERT_TRUE(bad.ok()) << bad.status();
  ASSERT_FALSE(bad->empty());
  std::set<std::string> bad_set;
  for (const Fact& f : *bad) bad_set.insert(f.ToString());
  EXPECT_TRUE(bad_set.count("path(0, 1)"));
  EXPECT_TRUE(bad_set.count("path(0, 2)"));
  // Facts on the intact cycle have genuine proofs.
  auto good =
      engine->HasValidProofTree(F("path", {Term::Int(1), Term::Int(2)}));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(*good);
}

TEST(IncrementalTest, AcyclicDerivationsAlwaysHaveProofs) {
  auto engine = Make(R"(
    .decl edge/2 input.
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  // DAG edges only.
  uint32_t seq = 0;
  Timestamp t = 1;
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 3}, {1, 3}, {3, 4}}) {
    ASSERT_TRUE(engine
                    ->Apply(Insert(F("edge", {Term::Int(a), Term::Int(b)}), 0,
                                   t++, seq++),
                            nullptr)
                    .ok());
  }
  ASSERT_TRUE(
      engine->Apply(Delete(F("edge", {Term::Int(2), Term::Int(3)}), t), nullptr)
          .ok());
  auto bad = engine->FactsWithoutValidProof();
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->empty());
}

// --- XY-stratified incremental maintenance (logicJ) ---

TEST(IncrementalTest, LogicJIncrementalTreeConstruction) {
  const char* program = R"(
    .decl g/2 input.
    j(0, 0).
    j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
  )";
  auto engine = Make(program);
  // Line graph 0-1-2 arriving edge by edge.
  uint32_t seq = 0;
  Timestamp t = 1;
  std::vector<Fact> alive;
  for (auto [a, b] : std::vector<std::pair<int, int>>{{0, 1}, {1, 2}}) {
    Fact f1 = F("g", {Term::Int(a), Term::Int(b)});
    Fact f2 = F("g", {Term::Int(b), Term::Int(a)});
    ASSERT_TRUE(engine->Apply(Insert(f1, 0, t++, seq++), nullptr).ok());
    ASSERT_TRUE(engine->Apply(Insert(f2, 0, t++, seq++), nullptr).ok());
    alive.push_back(f1);
    alive.push_back(f2);
  }
  std::vector<Fact> got = engine->AliveFacts(Intern("j"));
  std::set<std::string> got_set;
  for (const Fact& f : got) got_set.insert(f.ToString());
  EXPECT_TRUE(got_set.count("j(0, 0)"));
  EXPECT_TRUE(got_set.count("j(1, 1)"));
  EXPECT_TRUE(got_set.count("j(2, 2)"));
  EXPECT_EQ(got.size(), 3u) << [&] {
    std::string s;
    for (const Fact& f : got) s += f.ToString() + " ";
    return s;
  }();
}

TEST(IncrementalTest, StatsTrackDerivations) {
  auto engine = Make(kJoinProgram);
  ASSERT_TRUE(
      engine->Apply(Insert(F("r", {Term::Int(1), Term::Int(2)}), 0, 1, 0),
                    nullptr)
          .ok());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 1, 2, 0),
                    nullptr)
          .ok());
  EXPECT_EQ(engine->stats().derivations_added, 1u);
  EXPECT_EQ(engine->stats().peak_derivations, 1u);
  EXPECT_EQ(engine->stats().events, 2u);
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

TEST(IncrementalTest, AdvanceToWithoutEventsExpiresInOrder) {
  auto engine = Make(R"(
    .decl a(x) input window 100.
    keep(X) :- a(X).
  )");
  std::vector<StreamEvent> out;
  ASSERT_TRUE(engine->Apply(Insert(F("a", {Term::Int(1)}), 0, 10, 0), &out).ok());
  ASSERT_TRUE(engine->Apply(Insert(F("a", {Term::Int(2)}), 0, 50, 1), &out).ok());
  out.clear();
  // Advance far past both expirations at once: both retract, oldest first.
  ASSERT_TRUE(engine->AdvanceTo(1'000, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].fact, F("keep", {Term::Int(1)}));
  EXPECT_EQ(out[1].fact, F("keep", {Term::Int(2)}));
  EXPECT_TRUE(engine->AliveFacts(Intern("keep")).empty());
  // Idempotent.
  out.clear();
  ASSERT_TRUE(engine->AdvanceTo(2'000, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(IncrementalTest, ReinsertAfterExpiryGetsFreshGeneration) {
  auto engine = Make(R"(
    .decl a(x) input window 100.
    keep(X) :- a(X).
  )");
  Fact a1 = F("a", {Term::Int(1)});
  ASSERT_TRUE(engine->Apply(Insert(a1, 0, 10, 0), nullptr).ok());
  ASSERT_TRUE(engine->AdvanceTo(500, nullptr).ok());
  EXPECT_TRUE(engine->AliveFacts(Intern("keep")).empty());
  // Same fact, new generation.
  ASSERT_TRUE(engine->Apply(Insert(a1, 0, 600, 1), nullptr).ok());
  EXPECT_EQ(engine->AliveFacts(Intern("keep")).size(), 1u);
  ASSERT_TRUE(engine->AdvanceTo(800, nullptr).ok());
  EXPECT_TRUE(engine->AliveFacts(Intern("keep")).empty());
}

TEST(IncrementalTest, DeleteUnknownFactIsNoOp) {
  auto engine = Make(kJoinProgram);
  std::vector<StreamEvent> out;
  ASSERT_TRUE(
      engine->Apply(Delete(F("r", {Term::Int(9), Term::Int(9)}), 5), &out)
          .ok());
  EXPECT_TRUE(out.empty());
}

TEST(IncrementalTest, DirectDeleteOfDerivedFactRejected) {
  auto engine = Make(kJoinProgram);
  ASSERT_TRUE(
      engine->Apply(Insert(F("r", {Term::Int(1), Term::Int(2)}), 0, 1, 0),
                    nullptr)
          .ok());
  ASSERT_TRUE(
      engine->Apply(Insert(F("s", {Term::Int(2), Term::Int(3)}), 0, 2, 1),
                    nullptr)
          .ok());
  Status st =
      engine->Apply(Delete(F("t", {Term::Int(1), Term::Int(3)}), 3), nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deduce
