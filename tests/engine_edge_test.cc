// Distributed-engine edge cases: rule-less programs, duplicate facts from
// distinct sources, deletion/window interplay, and determinism.

#include <gtest/gtest.h>

#include <set>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

namespace deduce {
namespace {

LinkModel ExactLink() {
  LinkModel link;
  link.base_delay = 1'000;
  link.jitter = 500;
  link.per_byte_delay = 4;
  return link;
}

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(EngineEdgeTest, StorageOnlyProgram) {
  // No rules at all: injection replicates but derives nothing.
  Program program = Parse(".decl r/2 input.");
  Network net(Topology::Grid(4), ExactLink(), 1);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)
                  ->Inject(5, StreamOp::kInsert,
                           Fact(Intern("r"), {Term::Int(1), Term::Int(2)}))
                  .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->stats().errors.empty());
  EXPECT_GT((*engine)->TotalReplicas(), 1u);  // replicated along the row
  EXPECT_EQ((*engine)->stats().results_emitted, 0u);
}

TEST(EngineEdgeTest, DuplicateFactsFromDistinctSources) {
  // Two nodes generate the *same* fact. Each is a distinct tuple (own id);
  // a derivation survives while any support instance remains (§IV-A
  // set-of-derivations over tuple ids).
  const char* text = R"(
    .decl r/2 input.
    .decl s/2 input.
    t(X, Z) :- r(X, Y), s(Y, Z).
  )";
  Program program = Parse(text);
  Network net(Topology::Grid(4), ExactLink(), 2);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  Fact r(Intern("r"), {Term::Int(1), Term::Int(2)});
  Fact s(Intern("s"), {Term::Int(2), Term::Int(3)});
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)->Inject(3, StreamOp::kInsert, r).ok());
  net.sim().RunUntil(200'000);
  ASSERT_TRUE((*engine)->Inject(12, StreamOp::kInsert, r).ok());  // duplicate
  net.sim().RunUntil(400'000);
  ASSERT_TRUE((*engine)->Inject(9, StreamOp::kInsert, s).ok());
  net.sim().Run();
  EXPECT_EQ((*engine)->ResultFacts(Intern("t")).size(), 1u);

  // Deleting node 3's copy leaves node 12's derivation alive.
  net.sim().RunUntil(net.sim().now() + 100'000);
  ASSERT_TRUE((*engine)->Inject(3, StreamOp::kDelete, r).ok());
  net.sim().Run();
  EXPECT_EQ((*engine)->ResultFacts(Intern("t")).size(), 1u);

  // Deleting the second copy retracts the result.
  net.sim().RunUntil(net.sim().now() + 100'000);
  ASSERT_TRUE((*engine)->Inject(12, StreamOp::kDelete, r).ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->ResultFacts(Intern("t")).empty());
  EXPECT_TRUE((*engine)->stats().errors.empty());
}

TEST(EngineEdgeTest, DeleteThenReinsertRevives) {
  const char* text = R"(
    .decl r/2 input.
    .decl s/2 input.
    t(X, Z) :- r(X, Y), s(Y, Z).
  )";
  Program program = Parse(text);
  Network net(Topology::Grid(4), ExactLink(), 3);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  Fact r(Intern("r"), {Term::Int(1), Term::Int(2)});
  Fact s(Intern("s"), {Term::Int(2), Term::Int(3)});
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kInsert, r).ok());
  net.sim().RunUntil(200'000);
  ASSERT_TRUE((*engine)->Inject(15, StreamOp::kInsert, s).ok());
  net.sim().Run();
  ASSERT_EQ((*engine)->ResultFacts(Intern("t")).size(), 1u);

  net.sim().RunUntil(net.sim().now() + 50'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kDelete, r).ok());
  net.sim().Run();
  ASSERT_TRUE((*engine)->ResultFacts(Intern("t")).empty());

  // Reinsert at the same node: a fresh generation revives the result.
  net.sim().RunUntil(net.sim().now() + 50'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kInsert, r).ok());
  net.sim().Run();
  EXPECT_EQ((*engine)->ResultFacts(Intern("t")).size(), 1u);
  EXPECT_TRUE((*engine)->stats().errors.empty());
}

TEST(EngineEdgeTest, DoubleDeleteRejectedAtSource) {
  Program program = Parse(".decl r/2 input.");
  Network net(Topology::Grid(3), ExactLink(), 4);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  Fact r(Intern("r"), {Term::Int(1), Term::Int(2)});
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kInsert, r).ok());
  net.sim().RunUntil(100'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kDelete, r).ok());
  net.sim().RunUntil(200'000);
  // The tuple is already deletion-marked: a second delete finds nothing.
  EXPECT_EQ((*engine)->Inject(0, StreamOp::kDelete, r).code(),
            StatusCode::kNotFound);
}

TEST(EngineEdgeTest, DeterministicAcrossRuns) {
  const char* text = R"(
    .decl r/3 input.
    .decl s/3 input.
    t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
  )";
  auto run = [&](uint64_t seed) {
    Program program = Parse(text);
    Network net(Topology::Grid(4), ExactLink(), seed);
    auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
    EXPECT_TRUE(engine.ok());
    Rng rng(seed);
    SimTime t = 10'000;
    for (int i = 0; i < 12; ++i, t += 100'000) {
      net.sim().RunUntil(t);
      NodeId node = static_cast<NodeId>(rng.Uniform(0, 15));
      (void)(*engine)->Inject(
          node, StreamOp::kInsert,
          Fact(Intern(i % 2 ? "r" : "s"),
               {Term::Int(rng.Uniform(0, 2)), Term::Int(node), Term::Int(i)}));
    }
    net.sim().Run();
    return std::make_tuple(net.stats().TotalMessages(),
                           net.stats().TotalBytes(),
                           (*engine)->ResultFacts(Intern("t")).size());
  };
  EXPECT_EQ(run(42), run(42));
  // Different seed: same results (zero loss), traffic may differ by jitter.
  auto a = run(42);
  auto b = run(43);
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(EngineEdgeTest, WindowedDeletionBeforeExpiry) {
  const char* text = R"(
    .decl a(x, n) input window 2000000.
    .decl b(x, n) input window 2000000.
    both(X) :- a(X, N1), b(X, N2).
  )";
  Program program = Parse(text);
  Network net(Topology::Grid(4), ExactLink(), 5);
  auto engine = DistributedEngine::Create(&net, program, EngineOptions{});
  ASSERT_TRUE(engine.ok());
  Fact a(Intern("a"), {Term::Int(1), Term::Int(0)});
  net.sim().RunUntil(10'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kInsert, a).ok());
  // Explicit deletion long before the 2 s window would expire it.
  net.sim().RunUntil(300'000);
  ASSERT_TRUE((*engine)->Inject(0, StreamOp::kDelete, a).ok());
  net.sim().RunUntil(600'000);
  ASSERT_TRUE((*engine)
                  ->Inject(15, StreamOp::kInsert,
                           Fact(Intern("b"), {Term::Int(1), Term::Int(15)}))
                  .ok());
  net.sim().Run();
  EXPECT_TRUE((*engine)->ResultFacts(Intern("both")).empty());
  EXPECT_TRUE((*engine)->stats().errors.empty());
}

}  // namespace
}  // namespace deduce
