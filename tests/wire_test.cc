#include "deduce/engine/wire.h"

#include <gtest/gtest.h>

#include "deduce/common/rng.h"
#include "deduce/net/codec.h"

namespace deduce {
namespace {

/// Random ground term generator for round-trip property tests.
Term RandomGroundTerm(Rng* rng, int depth = 0) {
  int kind = static_cast<int>(rng->Uniform(0, depth >= 3 ? 2 : 4));
  switch (kind) {
    case 0:
      return Term::Int(rng->Uniform(-1000000, 1000000));
    case 1:
      return Term::Real(rng->UniformDouble(-1e6, 1e6));
    case 2: {
      static const char* kSyms[] = {"enemy", "friendly", "a", "b",
                                    "long symbol with spaces"};
      return Term::Sym(kSyms[rng->Uniform(0, 4)]);
    }
    case 3: {
      std::vector<Term> args;
      int n = static_cast<int>(rng->Uniform(0, 3));
      for (int i = 0; i < n; ++i) args.push_back(RandomGroundTerm(rng, depth + 1));
      static const char* kFns[] = {"loc", "r", "f"};
      return Term::Function(kFns[rng->Uniform(0, 2)], std::move(args));
    }
    default: {
      std::vector<Term> elems;
      int n = static_cast<int>(rng->Uniform(0, 3));
      for (int i = 0; i < n; ++i) elems.push_back(RandomGroundTerm(rng, depth + 1));
      return Term::MakeList(elems);
    }
  }
}

Fact RandomFact(Rng* rng) {
  static const char* kPreds[] = {"veh", "report", "t", "j"};
  std::vector<Term> args;
  int n = static_cast<int>(rng->Uniform(0, 4));
  for (int i = 0; i < n; ++i) args.push_back(RandomGroundTerm(rng));
  return Fact(Intern(kPreds[rng->Uniform(0, 3)]), std::move(args));
}

TEST(WireTest, StoreRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    StoreWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(-1, 100));
    w.pred = Intern("veh");
    w.fact = RandomFact(&rng);
    w.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)),
                   rng.Uniform(0, 1000000), static_cast<uint32_t>(i)};
    w.gen_ts = rng.Uniform(0, 1000000);
    w.deletion = rng.Bernoulli(0.5);
    w.del_ts = rng.Uniform(0, 1000000);
    for (int k = 0; k < rng.Uniform(0, 5); ++k) {
      w.path_remaining.push_back(static_cast<NodeId>(rng.Uniform(0, 99)));
    }
    w.flood_ttl = static_cast<int32_t>(rng.Uniform(-1, 20));

    Message m = w.Encode();
    auto back = StoreWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->fact, w.fact);
    EXPECT_EQ(back->id, w.id);
    EXPECT_EQ(back->gen_ts, w.gen_ts);
    EXPECT_EQ(back->deletion, w.deletion);
    EXPECT_EQ(back->path_remaining, w.path_remaining);
    EXPECT_EQ(back->flood_ttl, w.flood_ttl);
    auto target = PeekFinalTarget(m);
    ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, w.final_target);
  }
}

TEST(WireTest, JoinPassRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    JoinPassWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.delta_index = static_cast<uint32_t>(rng.Uniform(0, 30));
    w.removal = rng.Bernoulli(0.5);
    w.update_ts = rng.Uniform(0, 1 << 30);
    w.update_id = TupleId{3, 12345, 6};
    w.pass_index = static_cast<uint32_t>(rng.Uniform(0, 4));
    w.degraded = rng.Bernoulli(0.5);
    for (int k = 0; k < rng.Uniform(0, 4); ++k) {
      w.path_remaining.push_back(static_cast<NodeId>(rng.Uniform(0, 99)));
    }
    for (int p = 0; p < rng.Uniform(0, 4); ++p) {
      PartialWire partial;
      partial.matched_mask = static_cast<uint32_t>(rng.NextUint64());
      for (int b = 0; b < rng.Uniform(0, 3); ++b) {
        partial.bindings.emplace_back(Intern("X" + std::to_string(b)),
                                      RandomGroundTerm(&rng));
      }
      for (int s = 0; s < rng.Uniform(0, 3); ++s) {
        partial.support.emplace_back(
            static_cast<uint32_t>(s),
            TupleId{static_cast<NodeId>(s), rng.Uniform(0, 99999), 0});
      }
      w.partials.push_back(std::move(partial));
    }

    Message m = w.Encode();
    auto back = JoinPassWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->delta_index, w.delta_index);
    EXPECT_EQ(back->removal, w.removal);
    EXPECT_EQ(back->update_ts, w.update_ts);
    EXPECT_EQ(back->pass_index, w.pass_index);
    EXPECT_EQ(back->degraded, w.degraded);
    ASSERT_EQ(back->partials.size(), w.partials.size());
    for (size_t p = 0; p < w.partials.size(); ++p) {
      EXPECT_EQ(back->partials[p].matched_mask, w.partials[p].matched_mask);
      EXPECT_EQ(back->partials[p].bindings, w.partials[p].bindings);
      EXPECT_EQ(back->partials[p].support, w.partials[p].support);
    }
  }
}

TEST(WireTest, ResultRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ResultWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.pred = Intern("t");
    w.fact = RandomFact(&rng);
    w.removal = rng.Bernoulli(0.5);
    w.rule_id = static_cast<int32_t>(rng.Uniform(-1, 20));
    for (int s = 0; s < rng.Uniform(0, 5); ++s) {
      w.support.push_back(TupleId{static_cast<NodeId>(s), 77, 1});
    }
    w.update_ts = rng.Uniform(0, 1 << 30);
    w.degraded = rng.Bernoulli(0.5);
    auto back = ResultWire::Decode(w.Encode());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->fact, w.fact);
    EXPECT_EQ(back->removal, w.removal);
    EXPECT_EQ(back->rule_id, w.rule_id);
    EXPECT_EQ(back->support, w.support);
    EXPECT_EQ(back->degraded, w.degraded);
  }
}

TEST(WireTest, AckRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    AckWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.acker = static_cast<NodeId>(rng.Uniform(0, 99));
    w.seq = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    Message m = w.Encode();
    auto back = AckWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->acker, w.acker);
    EXPECT_EQ(back->seq, w.seq);
    // Intermediate nodes must be able to forward an ack like any other
    // engine message.
    auto peek = PeekFinalTarget(m);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(*peek, w.final_target);
  }
}

TEST(WireTest, ReliableRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    StoreWire inner;
    inner.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    inner.pred = Intern("veh");
    inner.fact = RandomFact(&rng);
    inner.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)), 7, 1};
    Message inner_msg = inner.Encode();

    ReliableWire w;
    w.final_target = inner.final_target;
    w.origin = static_cast<NodeId>(rng.Uniform(0, 99));
    w.seq = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    w.inner_type = inner_msg.type;
    w.inner_payload = inner_msg.payload;
    Message m = w.Encode();
    auto back = ReliableWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->origin, w.origin);
    EXPECT_EQ(back->seq, w.seq);
    EXPECT_EQ(back->inner_type, w.inner_type);
    EXPECT_EQ(back->inner_payload, w.inner_payload);
    // The envelope forwards by its own final_target, and the payload
    // survives the trip bit-for-bit.
    auto peek = PeekFinalTarget(m);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(*peek, w.final_target);
    Message unwrapped;
    unwrapped.type = back->inner_type;
    unwrapped.payload = back->inner_payload;
    auto store = StoreWire::Decode(unwrapped);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->fact, inner.fact);
  }
}

TEST(WireTest, RepairWiresRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    DigestRequestWire req;
    req.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    req.requester = static_cast<NodeId>(rng.Uniform(0, 99));
    req.round = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    req.anti_entropy = rng.Bernoulli(0.5);
    Message req_msg = req.Encode();
    auto req_back = DigestRequestWire::Decode(req_msg);
    ASSERT_TRUE(req_back.ok()) << req_back.status();
    EXPECT_EQ(req_back->requester, req.requester);
    EXPECT_EQ(req_back->round, req.round);
    EXPECT_EQ(req_back->anti_entropy, req.anti_entropy);
    auto peek = PeekFinalTarget(req_msg);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(*peek, req.final_target);

    DigestReplyWire reply;
    reply.final_target = req.requester;
    reply.replier = req.final_target;
    reply.round = req.round;
    for (int d = 0; d < rng.Uniform(0, 4); ++d) {
      PredDigest pd;
      pd.pred = Intern("p" + std::to_string(d));
      pd.count = rng.NextUint64();
      pd.fingerprint = rng.NextUint64();
      reply.digests.push_back(pd);
    }
    auto reply_back = DigestReplyWire::Decode(reply.Encode());
    ASSERT_TRUE(reply_back.ok()) << reply_back.status();
    EXPECT_EQ(reply_back->replier, reply.replier);
    EXPECT_EQ(reply_back->round, reply.round);
    ASSERT_EQ(reply_back->digests.size(), reply.digests.size());
    for (size_t d = 0; d < reply.digests.size(); ++d) {
      EXPECT_EQ(reply_back->digests[d].pred, reply.digests[d].pred);
      EXPECT_EQ(reply_back->digests[d].count, reply.digests[d].count);
      EXPECT_EQ(reply_back->digests[d].fingerprint,
                reply.digests[d].fingerprint);
    }

    RepairPullWire pull;
    pull.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    pull.requester = static_cast<NodeId>(rng.Uniform(0, 99));
    pull.round = req.round;
    pull.reverse = rng.Bernoulli(0.5);
    for (int p = 0; p < rng.Uniform(0, 3); ++p) {
      pull.preds.push_back(Intern("p" + std::to_string(p)));
    }
    for (int k = 0; k < rng.Uniform(0, 4); ++k) {
      RepairPullWire::Known known;
      known.pred = Intern("p0");
      known.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)),
                         rng.Uniform(0, 1000000), static_cast<uint32_t>(k)};
      known.have_insert = rng.Bernoulli(0.5);
      known.has_del = rng.Bernoulli(0.5);
      pull.known.push_back(known);
    }
    auto pull_back = RepairPullWire::Decode(pull.Encode());
    ASSERT_TRUE(pull_back.ok()) << pull_back.status();
    EXPECT_EQ(pull_back->requester, pull.requester);
    EXPECT_EQ(pull_back->reverse, pull.reverse);
    EXPECT_EQ(pull_back->preds, pull.preds);
    ASSERT_EQ(pull_back->known.size(), pull.known.size());
    for (size_t k = 0; k < pull.known.size(); ++k) {
      EXPECT_EQ(pull_back->known[k].pred, pull.known[k].pred);
      EXPECT_EQ(pull_back->known[k].id, pull.known[k].id);
      EXPECT_EQ(pull_back->known[k].have_insert, pull.known[k].have_insert);
      EXPECT_EQ(pull_back->known[k].has_del, pull.known[k].has_del);
    }

    RepairPushWire push;
    push.final_target = pull.requester;
    push.replier = pull.final_target;
    push.round = pull.round;
    for (int e = 0; e < rng.Uniform(0, 4); ++e) {
      RepairPushWire::Entry entry;
      entry.pred = Intern("p" + std::to_string(e));
      entry.fact = RandomFact(&rng);
      entry.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)),
                         rng.Uniform(0, 1000000), static_cast<uint32_t>(e)};
      entry.gen_ts = rng.Uniform(0, 1000000);
      entry.have_insert = rng.Bernoulli(0.5);
      entry.has_del = rng.Bernoulli(0.5);
      entry.del_ts = rng.Uniform(0, 1000000);
      push.entries.push_back(std::move(entry));
    }
    auto push_back = RepairPushWire::Decode(push.Encode());
    ASSERT_TRUE(push_back.ok()) << push_back.status();
    EXPECT_EQ(push_back->replier, push.replier);
    EXPECT_EQ(push_back->round, push.round);
    ASSERT_EQ(push_back->entries.size(), push.entries.size());
    for (size_t e = 0; e < push.entries.size(); ++e) {
      EXPECT_EQ(push_back->entries[e].pred, push.entries[e].pred);
      EXPECT_EQ(push_back->entries[e].fact, push.entries[e].fact);
      EXPECT_EQ(push_back->entries[e].id, push.entries[e].id);
      EXPECT_EQ(push_back->entries[e].gen_ts, push.entries[e].gen_ts);
      EXPECT_EQ(push_back->entries[e].have_insert,
                push.entries[e].have_insert);
      EXPECT_EQ(push_back->entries[e].has_del, push.entries[e].has_del);
      EXPECT_EQ(push_back->entries[e].del_ts, push.entries[e].del_ts);
    }
  }
}

/// Fuzz: random bytes must never crash a decoder — only produce errors or
/// (rarely) a valid message.
TEST(WireTest, FuzzDecodersNeverCrash) {
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    Message m;
    m.type = static_cast<uint16_t>(rng.Uniform(1, 6));
    size_t len = static_cast<size_t>(rng.Uniform(0, 64));
    for (size_t b = 0; b < len; ++b) {
      m.payload.push_back(static_cast<uint8_t>(rng.Uniform(0, 255)));
    }
    (void)StoreWire::Decode(m);
    (void)JoinPassWire::Decode(m);
    (void)ResultWire::Decode(m);
    (void)AckWire::Decode(m);
    (void)ReliableWire::Decode(m);
    (void)DigestRequestWire::Decode(m);
    (void)DigestReplyWire::Decode(m);
    (void)RepairPullWire::Decode(m);
    (void)RepairPushWire::Decode(m);
    (void)PeekFinalTarget(m);
  }
  SUCCEED();
}

/// Truncation fuzz: valid messages cut at every prefix length decode to an
/// error, never crash, never read out of bounds.
TEST(WireTest, TruncationsAreErrors) {
  Rng rng(5);
  StoreWire w;
  w.final_target = 3;
  w.pred = Intern("veh");
  w.fact = RandomFact(&rng);
  w.id = TupleId{1, 2, 3};
  w.path_remaining = {4, 5, 6};
  Message full = w.Encode();
  for (size_t cut = 0; cut + 1 < full.payload.size(); ++cut) {
    Message m = full;
    m.payload.resize(cut);
    auto r = StoreWire::Decode(m);
    EXPECT_FALSE(r.ok()) << "cut at " << cut << " decoded successfully";
  }
}

}  // namespace
}  // namespace deduce
