#include "deduce/engine/wire.h"

#include <gtest/gtest.h>

#include "deduce/common/rng.h"
#include "deduce/net/codec.h"

namespace deduce {
namespace {

/// Random ground term generator for round-trip property tests.
Term RandomGroundTerm(Rng* rng, int depth = 0) {
  int kind = static_cast<int>(rng->Uniform(0, depth >= 3 ? 2 : 4));
  switch (kind) {
    case 0:
      return Term::Int(rng->Uniform(-1000000, 1000000));
    case 1:
      return Term::Real(rng->UniformDouble(-1e6, 1e6));
    case 2: {
      static const char* kSyms[] = {"enemy", "friendly", "a", "b",
                                    "long symbol with spaces"};
      return Term::Sym(kSyms[rng->Uniform(0, 4)]);
    }
    case 3: {
      std::vector<Term> args;
      int n = static_cast<int>(rng->Uniform(0, 3));
      for (int i = 0; i < n; ++i) args.push_back(RandomGroundTerm(rng, depth + 1));
      static const char* kFns[] = {"loc", "r", "f"};
      return Term::Function(kFns[rng->Uniform(0, 2)], std::move(args));
    }
    default: {
      std::vector<Term> elems;
      int n = static_cast<int>(rng->Uniform(0, 3));
      for (int i = 0; i < n; ++i) elems.push_back(RandomGroundTerm(rng, depth + 1));
      return Term::MakeList(elems);
    }
  }
}

Fact RandomFact(Rng* rng) {
  static const char* kPreds[] = {"veh", "report", "t", "j"};
  std::vector<Term> args;
  int n = static_cast<int>(rng->Uniform(0, 4));
  for (int i = 0; i < n; ++i) args.push_back(RandomGroundTerm(rng));
  return Fact(Intern(kPreds[rng->Uniform(0, 3)]), std::move(args));
}

TEST(WireTest, StoreRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    StoreWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(-1, 100));
    w.pred = Intern("veh");
    w.fact = RandomFact(&rng);
    w.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)),
                   rng.Uniform(0, 1000000), static_cast<uint32_t>(i)};
    w.gen_ts = rng.Uniform(0, 1000000);
    w.deletion = rng.Bernoulli(0.5);
    w.del_ts = rng.Uniform(0, 1000000);
    for (int k = 0; k < rng.Uniform(0, 5); ++k) {
      w.path_remaining.push_back(static_cast<NodeId>(rng.Uniform(0, 99)));
    }
    w.flood_ttl = static_cast<int32_t>(rng.Uniform(-1, 20));

    Message m = w.Encode();
    auto back = StoreWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->fact, w.fact);
    EXPECT_EQ(back->id, w.id);
    EXPECT_EQ(back->gen_ts, w.gen_ts);
    EXPECT_EQ(back->deletion, w.deletion);
    EXPECT_EQ(back->path_remaining, w.path_remaining);
    EXPECT_EQ(back->flood_ttl, w.flood_ttl);
    auto target = PeekFinalTarget(m);
    ASSERT_TRUE(target.ok());
    EXPECT_EQ(*target, w.final_target);
  }
}

TEST(WireTest, JoinPassRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    JoinPassWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.delta_index = static_cast<uint32_t>(rng.Uniform(0, 30));
    w.removal = rng.Bernoulli(0.5);
    w.update_ts = rng.Uniform(0, 1 << 30);
    w.update_id = TupleId{3, 12345, 6};
    w.pass_index = static_cast<uint32_t>(rng.Uniform(0, 4));
    for (int k = 0; k < rng.Uniform(0, 4); ++k) {
      w.path_remaining.push_back(static_cast<NodeId>(rng.Uniform(0, 99)));
    }
    for (int p = 0; p < rng.Uniform(0, 4); ++p) {
      PartialWire partial;
      partial.matched_mask = static_cast<uint32_t>(rng.NextUint64());
      for (int b = 0; b < rng.Uniform(0, 3); ++b) {
        partial.bindings.emplace_back(Intern("X" + std::to_string(b)),
                                      RandomGroundTerm(&rng));
      }
      for (int s = 0; s < rng.Uniform(0, 3); ++s) {
        partial.support.emplace_back(
            static_cast<uint32_t>(s),
            TupleId{static_cast<NodeId>(s), rng.Uniform(0, 99999), 0});
      }
      w.partials.push_back(std::move(partial));
    }

    Message m = w.Encode();
    auto back = JoinPassWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->delta_index, w.delta_index);
    EXPECT_EQ(back->removal, w.removal);
    EXPECT_EQ(back->update_ts, w.update_ts);
    EXPECT_EQ(back->pass_index, w.pass_index);
    ASSERT_EQ(back->partials.size(), w.partials.size());
    for (size_t p = 0; p < w.partials.size(); ++p) {
      EXPECT_EQ(back->partials[p].matched_mask, w.partials[p].matched_mask);
      EXPECT_EQ(back->partials[p].bindings, w.partials[p].bindings);
      EXPECT_EQ(back->partials[p].support, w.partials[p].support);
    }
  }
}

TEST(WireTest, ResultRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ResultWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.pred = Intern("t");
    w.fact = RandomFact(&rng);
    w.removal = rng.Bernoulli(0.5);
    w.rule_id = static_cast<int32_t>(rng.Uniform(-1, 20));
    for (int s = 0; s < rng.Uniform(0, 5); ++s) {
      w.support.push_back(TupleId{static_cast<NodeId>(s), 77, 1});
    }
    w.update_ts = rng.Uniform(0, 1 << 30);
    auto back = ResultWire::Decode(w.Encode());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->fact, w.fact);
    EXPECT_EQ(back->removal, w.removal);
    EXPECT_EQ(back->rule_id, w.rule_id);
    EXPECT_EQ(back->support, w.support);
  }
}

TEST(WireTest, AckRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    AckWire w;
    w.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    w.acker = static_cast<NodeId>(rng.Uniform(0, 99));
    w.seq = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    Message m = w.Encode();
    auto back = AckWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->acker, w.acker);
    EXPECT_EQ(back->seq, w.seq);
    // Intermediate nodes must be able to forward an ack like any other
    // engine message.
    auto peek = PeekFinalTarget(m);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(*peek, w.final_target);
  }
}

TEST(WireTest, ReliableRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    StoreWire inner;
    inner.final_target = static_cast<NodeId>(rng.Uniform(0, 99));
    inner.pred = Intern("veh");
    inner.fact = RandomFact(&rng);
    inner.id = TupleId{static_cast<NodeId>(rng.Uniform(0, 99)), 7, 1};
    Message inner_msg = inner.Encode();

    ReliableWire w;
    w.final_target = inner.final_target;
    w.origin = static_cast<NodeId>(rng.Uniform(0, 99));
    w.seq = static_cast<uint32_t>(rng.Uniform(0, 1 << 30));
    w.inner_type = inner_msg.type;
    w.inner_payload = inner_msg.payload;
    Message m = w.Encode();
    auto back = ReliableWire::Decode(m);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->final_target, w.final_target);
    EXPECT_EQ(back->origin, w.origin);
    EXPECT_EQ(back->seq, w.seq);
    EXPECT_EQ(back->inner_type, w.inner_type);
    EXPECT_EQ(back->inner_payload, w.inner_payload);
    // The envelope forwards by its own final_target, and the payload
    // survives the trip bit-for-bit.
    auto peek = PeekFinalTarget(m);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(*peek, w.final_target);
    Message unwrapped;
    unwrapped.type = back->inner_type;
    unwrapped.payload = back->inner_payload;
    auto store = StoreWire::Decode(unwrapped);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->fact, inner.fact);
  }
}

/// Fuzz: random bytes must never crash a decoder — only produce errors or
/// (rarely) a valid message.
TEST(WireTest, FuzzDecodersNeverCrash) {
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    Message m;
    m.type = static_cast<uint16_t>(rng.Uniform(1, 6));
    size_t len = static_cast<size_t>(rng.Uniform(0, 64));
    for (size_t b = 0; b < len; ++b) {
      m.payload.push_back(static_cast<uint8_t>(rng.Uniform(0, 255)));
    }
    (void)StoreWire::Decode(m);
    (void)JoinPassWire::Decode(m);
    (void)ResultWire::Decode(m);
    (void)AckWire::Decode(m);
    (void)ReliableWire::Decode(m);
    (void)PeekFinalTarget(m);
  }
  SUCCEED();
}

/// Truncation fuzz: valid messages cut at every prefix length decode to an
/// error, never crash, never read out of bounds.
TEST(WireTest, TruncationsAreErrors) {
  Rng rng(5);
  StoreWire w;
  w.final_target = 3;
  w.pred = Intern("veh");
  w.fact = RandomFact(&rng);
  w.id = TupleId{1, 2, 3};
  w.path_remaining = {4, 5, 6};
  Message full = w.Encode();
  for (size_t cut = 0; cut + 1 < full.payload.size(); ++cut) {
    Message m = full;
    m.payload.resize(cut);
    auto r = StoreWire::Decode(m);
    EXPECT_FALSE(r.ok()) << "cut at " << cut << " decoded successfully";
  }
}

}  // namespace
}  // namespace deduce
