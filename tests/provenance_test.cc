// Causal tuple provenance tests: derived trace ids (TraceIdFor), wire
// trace-id extraction (CollectTraceIds), lineage ring semantics, schema-v2
// deriv emission, `dlog explain` reconstruction, and the central contract
// that enabling provenance changes no simulated counter.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "deduce/common/metrics.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "deduce/engine/provenance.h"
#include "deduce/engine/wire.h"

namespace deduce {
namespace {

TupleId MakeId(NodeId source, Timestamp ts, uint32_t seq) {
  TupleId id;
  id.source = source;
  id.timestamp = ts;
  id.seq = seq;
  return id;
}

TEST(TraceIdTest, DeterministicNonzeroAndDistinct) {
  TupleId a = MakeId(3, 100, 1);
  EXPECT_EQ(TraceIdFor(a), TraceIdFor(a));
  EXPECT_NE(TraceIdFor(a), 0u);  // 0 is the "no trace id" sentinel

  // Nearby ids (the common case: same node, consecutive seq/timestamps)
  // must not collide.
  std::set<uint64_t> seen;
  for (NodeId n = 0; n < 8; ++n) {
    for (Timestamp t = 0; t < 8; ++t) {
      for (uint32_t s = 0; s < 8; ++s) {
        seen.insert(TraceIdFor(MakeId(n, t * 1000, s)));
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u * 8u * 8u);
}

TEST(TraceIdTest, HexRoundTrip) {
  uint64_t tid = TraceIdFor(MakeId(5, 12345, 7));
  std::string hex = TraceIdToHex(tid);
  EXPECT_EQ(hex.size(), 16u);
  uint64_t back = 0;
  ASSERT_TRUE(TraceIdFromHex(hex, &back));
  EXPECT_EQ(back, tid);
  EXPECT_FALSE(TraceIdFromHex("not-hex", &back));
  EXPECT_FALSE(TraceIdFromHex("", &back));
}

TEST(CollectTraceIdsTest, ExtractsIdsFromEveryTupleBearingMessage) {
  TupleId ida = MakeId(1, 10, 1);
  TupleId idb = MakeId(2, 20, 2);
  TupleId idc = MakeId(3, 30, 3);
  Fact f(Intern("p"), {Term::Int(1)});

  StoreWire sw;
  sw.final_target = 4;
  sw.pred = f.predicate();
  sw.fact = f;
  sw.id = ida;
  std::vector<uint64_t> got = CollectTraceIds(sw.Encode());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], TraceIdFor(ida));

  JoinPassWire jw;
  jw.final_target = 4;
  jw.update_id = ida;
  PartialWire partial;
  partial.support.emplace_back(0u, idb);
  partial.support.emplace_back(1u, idc);
  jw.partials.push_back(partial);
  got = CollectTraceIds(jw.Encode());
  std::set<uint64_t> want = {TraceIdFor(ida), TraceIdFor(idb),
                             TraceIdFor(idc)};
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()), want);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));

  ResultWire rw;
  rw.final_target = 4;
  rw.pred = f.predicate();
  rw.fact = f;
  rw.support = {ida, idb};
  got = CollectTraceIds(rw.Encode());
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()),
            (std::set<uint64_t>{TraceIdFor(ida), TraceIdFor(idb)}));

  AggWire aw;
  aw.final_target = 4;
  aw.value = Term::Int(9);
  aw.contributor = idc;
  got = CollectTraceIds(aw.Encode());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], TraceIdFor(idc));

  // Acks carry no tuples.
  AckWire ack;
  ack.final_target = 1;
  ack.acker = 2;
  ack.seq = 3;
  EXPECT_TRUE(CollectTraceIds(ack.Encode()).empty());

  // A reliable envelope is attributed to its inner message.
  Message inner = rw.Encode();
  ReliableWire rel;
  rel.final_target = 4;
  rel.origin = 1;
  rel.seq = 7;
  rel.inner_type = inner.type;
  rel.inner_payload = inner.payload;
  got = CollectTraceIds(rel.Encode());
  EXPECT_EQ(std::set<uint64_t>(got.begin(), got.end()),
            (std::set<uint64_t>{TraceIdFor(ida), TraceIdFor(idb)}));
}

TEST(ProvenanceStoreTest, RingEvictsOldestAndClears) {
  ProvenanceStore store(4);
  for (int i = 0; i < 6; ++i) {
    ProvenanceEdge e;
    e.kind = ProvenanceEdge::Kind::kGen;
    e.time = i;
    e.tid = static_cast<uint64_t>(i + 1);
    store.Push(e);
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.dropped(), 2u);
  std::vector<ProvenanceEdge> edges = store.Edges();
  ASSERT_EQ(edges.size(), 4u);
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].time, static_cast<Timestamp>(i + 2));  // oldest-first
  }
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(TraceRecordTest, SchemaV2RoundTrip) {
  TraceRecord r;
  r.time = 5000;
  r.node = 2;
  r.kind = "deriv";
  r.phase = "result";
  r.pred = "t";
  r.schema = 2;
  r.tid = 0x1234abcd5678ef00ULL;
  r.tids = {1, 0xffffffffffffffffULL};
  r.fact = "t(1, \"x\")";
  r.rule = 3;
  r.lat = 4321;
  StatusOr<TraceRecord> back = TraceRecord::FromJson(r.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == r);
  // v1 records never mention the v2 keys, keeping old traces byte-stable.
  TraceRecord v1;
  v1.kind = "hop";
  std::string json = v1.ToJson();
  EXPECT_EQ(json.find("\"schema\""), std::string::npos);
  EXPECT_EQ(json.find("\"tid\""), std::string::npos);
  EXPECT_EQ(json.find("\"fact\""), std::string::npos);
}

// --- end-to-end: provenance through a simulated run ------------------------

constexpr char kJoinProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

struct ProvRun {
  std::string trace;
  MetricsRegistry registry;
  uint64_t net_messages = 0;
  uint64_t net_bytes = 0;
  SimTime quiesce = 0;
  EngineStats engine_stats;
  std::vector<ProvenanceEdge> edges;
  std::vector<Fact> results;
};

ProvRun RunProv(uint64_t seed, bool lossy, bool provenance) {
  auto program = ParseProgram(kJoinProgram);
  EXPECT_TRUE(program.ok()) << program.status();
  LinkModel link;
  if (lossy) {
    link.loss_rate = 0.2;
    link.retries = 1;
  }
  Network net(Topology::Grid(4), link, seed);
  ProvRun run;
  std::ostringstream trace_out;
  TraceWriter writer;
  writer.OpenStream(&trace_out);
  EngineOptions options;
  if (lossy) options.transport.reliable = true;
  options.metrics = &run.registry;
  options.trace = &writer;
  options.provenance.enabled = provenance;
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  SimTime t = 10'000;
  for (int i = 0; i < 8; ++i, t += 120'000) {
    net.sim().RunUntil(t);
    NodeId node = static_cast<NodeId>((i * 5) % net.node_count());
    Fact f(Intern(i % 2 == 0 ? "r" : "s"),
           {Term::Int(i % 3), Term::Int(node), Term::Int(i)});
    Status st = (*engine)->Inject(node, StreamOp::kInsert, f);
    EXPECT_TRUE(st.ok()) << st;
  }
  net.sim().Run();
  run.trace = trace_out.str();
  run.net_messages = net.stats().TotalMessages();
  run.net_bytes = net.stats().TotalBytes();
  run.quiesce = net.sim().now();
  run.engine_stats = (*engine)->stats();
  run.edges = (*engine)->ProvenanceEdges();
  Database db = (*engine)->ResultDatabase();
  for (const Fact& f : db.Relation(Intern("t"))) run.results.push_back(f);
  return run;
}

std::vector<TraceRecord> ParseTrace(const std::string& trace) {
  std::vector<TraceRecord> records;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    StatusOr<TraceRecord> r = TraceRecord::FromJson(line);
    EXPECT_TRUE(r.ok()) << r.status() << " <- " << line;
    if (r.ok()) records.push_back(std::move(*r));
  }
  return records;
}

TEST(ProvenanceTest, DerivRecordsAndLineageEdgesAreEmitted) {
  ProvRun run = RunProv(/*seed=*/5, /*lossy=*/false, /*provenance=*/true);
  ASSERT_FALSE(run.results.empty());
  EXPECT_FALSE(run.edges.empty());

  std::vector<TraceRecord> records = ParseTrace(run.trace);
  size_t gens = 0, results = 0, tid_injects = 0, tid_hops = 0;
  for (const TraceRecord& r : records) {
    if (r.kind == "deriv") {
      EXPECT_EQ(r.schema, 2);
      EXPECT_FALSE(r.fact.empty());
      if (r.phase == "gen") {
        EXPECT_NE(r.tid, 0u);
        ++gens;
      } else if (r.phase == "result") {
        EXPECT_FALSE(r.tids.empty());  // join results name their supports
        EXPECT_GE(r.lat, 0);
        ++results;
      }
    } else if (r.kind == "inject" && r.tid != 0) {
      ++tid_injects;
    } else if (r.kind == "hop" && !r.tids.empty()) {
      ++tid_hops;
    }
  }
  EXPECT_GT(gens, 0u);
  EXPECT_GT(results, 0u);
  EXPECT_EQ(tid_injects, run.engine_stats.tuples_injected);
  EXPECT_GT(tid_hops, 0u);

  // The in-RAM ring mirrors what was spilled to the trace.
  size_t edge_gens = 0;
  for (const ProvenanceEdge& e : run.edges) {
    if (e.kind == ProvenanceEdge::Kind::kGen) {
      EXPECT_NE(e.tid, 0u);
      ++edge_gens;
    }
  }
  EXPECT_EQ(edge_gens, gens);

  // The registry carries the per-predicate e2e latency histogram.
  const auto& entries = run.registry.entries();
  auto it = entries.find(MetricsRegistry::Key{-1, "prov", "t.e2e_us"});
  ASSERT_NE(it, entries.end());
  EXPECT_EQ(it->second.kind, MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(it->second.histogram.count, results);
}

TEST(ProvenanceTest, EnablingProvenanceChangesNoSimulatedCounter) {
  for (bool lossy : {false, true}) {
    ProvRun off = RunProv(/*seed=*/7, lossy, /*provenance=*/false);
    ProvRun on = RunProv(/*seed=*/7, lossy, /*provenance=*/true);
    EXPECT_EQ(off.net_messages, on.net_messages);
    EXPECT_EQ(off.net_bytes, on.net_bytes);
    EXPECT_EQ(off.quiesce, on.quiesce);
    EXPECT_EQ(off.engine_stats.derivations_added,
              on.engine_stats.derivations_added);
    EXPECT_EQ(off.engine_stats.join_passes, on.engine_stats.join_passes);
    EXPECT_EQ(off.engine_stats.retransmissions,
              on.engine_stats.retransmissions);
    EXPECT_EQ(off.results.size(), on.results.size());
    // Registries agree outside the provenance-only "prov" component and
    // the wall-clock "timing" component.
    auto filtered = [](const MetricsRegistry& reg) {
      std::vector<std::pair<MetricsRegistry::Key, uint64_t>> out;
      for (const auto& [key, entry] : reg.entries()) {
        if (std::get<1>(key) == "timing" || std::get<1>(key) == "prov") {
          continue;
        }
        out.emplace_back(key, entry.kind == MetricsRegistry::Kind::kGauge
                                  ? static_cast<uint64_t>(entry.gauge)
                                  : entry.counter);
      }
      return out;
    };
    EXPECT_EQ(filtered(off.registry), filtered(on.registry));
    // Provenance off leaves the trace exactly at schema v1.
    EXPECT_EQ(off.trace.find("\"schema\""), std::string::npos);
    EXPECT_EQ(off.trace.find("\"deriv\""), std::string::npos);
  }
}

TEST(ProvenanceTest, SameSeedProvenanceRunsAreDeterministic) {
  ProvRun a = RunProv(/*seed=*/9, /*lossy=*/true, /*provenance=*/true);
  ProvRun b = RunProv(/*seed=*/9, /*lossy=*/true, /*provenance=*/true);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.edges.size(), b.edges.size());
}

TEST(ProvenanceTest, ExplainReconcilesWithTraceStats) {
  ProvRun run = RunProv(/*seed=*/5, /*lossy=*/true, /*provenance=*/true);
  ASSERT_FALSE(run.results.empty());
  std::vector<TraceRecord> records = ParseTrace(run.trace);
  auto program = ParseProgram(kJoinProgram);
  ASSERT_TRUE(program.ok());

  std::istringstream in(run.trace);
  std::vector<std::string> errors;
  TraceStats stats = TraceStats::Aggregate(in, &errors);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_GT(stats.derivs, 0u);

  for (const Fact& target : run.results) {
    StatusOr<ExplainReport> report = ExplainFact(records, *program, target);
    ASSERT_TRUE(report.ok()) << report.status();
    // The acceptance criterion: explain's whole-trace totals equal
    // `dlog stats` on the same records, and the attributed slice is a
    // real, nonempty subset.
    EXPECT_EQ(report->trace_total.messages, stats.total_messages);
    EXPECT_EQ(report->trace_total.bytes, stats.total_bytes);
    EXPECT_EQ(report->trace_retransmits, stats.retransmits);
    EXPECT_GT(report->attributed_total.messages, 0u);
    EXPECT_LE(report->attributed_total.messages, stats.total_messages);
    EXPECT_LE(report->attributed_total.bytes, stats.total_bytes);
    EXPECT_GT(report->cone_facts, 1u);   // target + at least one input
    EXPECT_GE(report->cone_firings, 1u);
    EXPECT_GE(report->generated_us, report->first_inject_us);
    EXPECT_NE(report->Format().find("derivation of"), std::string::npos);
    EXPECT_NE(report->Format().find(target.ToString()), std::string::npos);
  }

  // A fact the run never derived is a NotFound, not a crash.
  Fact missing(Intern("t"),
               {Term::Int(99), Term::Int(99), Term::Int(99)});
  EXPECT_FALSE(ExplainFact(records, *program, missing).ok());
}

TEST(ProvenanceTest, LatencyTableSummarizesDerivRecords) {
  ProvRun run = RunProv(/*seed=*/5, /*lossy=*/false, /*provenance=*/true);
  std::istringstream in(run.trace);
  TraceStats stats = TraceStats::Aggregate(in, nullptr);
  std::string table = stats.LatencyTable();
  EXPECT_NE(table.find("per-predicate latency"), std::string::npos);
  EXPECT_NE(table.find("t"), std::string::npos);
  ASSERT_EQ(stats.latency_by_pred.count("t"), 1u);
  const TraceStats::LatencyCell& cell = stats.latency_by_pred.at("t");
  EXPECT_GT(cell.results, 0u);
  EXPECT_GT(cell.gens, 0u);
  EXPECT_GE(cell.lat_max, cell.lat_min);
  // A provenance-off trace has no deriv records and no table.
  ProvRun off = RunProv(/*seed=*/5, /*lossy=*/false, /*provenance=*/false);
  std::istringstream in2(off.trace);
  TraceStats stats2 = TraceStats::Aggregate(in2, nullptr);
  EXPECT_TRUE(stats2.LatencyTable().empty());
}

TEST(ProvenanceTest, LatencyTablePrintsDashWithoutCompletedSamples) {
  // A predicate can accumulate derivations (gen-phase deriv records) while
  // never completing an end-to-end sample — e.g. every result shipment is
  // still in flight when the trace is cut. The table must print `-` for the
  // latency columns of such a row instead of dividing by a zero sample
  // count.
  TraceRecord gen;
  gen.time = 1000;
  gen.node = 2;
  gen.kind = "deriv";
  gen.phase = "gen";
  gen.pred = "t";
  gen.fact = "t(1, 2, 3).";
  TraceRecord hop;
  hop.time = 1200;
  hop.kind = "hop";
  hop.phase = "result";
  hop.pred = "t";
  hop.bytes = 40;
  hop.delivered = true;
  std::istringstream in(gen.ToJson() + "\n" + hop.ToJson() + "\n");
  TraceStats stats = TraceStats::Aggregate(in, nullptr);
  ASSERT_EQ(stats.latency_by_pred.count("t"), 1u);
  const TraceStats::LatencyCell& cell = stats.latency_by_pred.at("t");
  EXPECT_EQ(cell.results, 0u);
  EXPECT_GT(cell.gens, 0u);

  std::string table = stats.LatencyTable();
  EXPECT_NE(table.find("per-predicate latency"), std::string::npos);
  EXPECT_EQ(table.find("nan"), std::string::npos);
  EXPECT_EQ(table.find("-nan"), std::string::npos);
  // The `t` row: zero results, one tuple, dashes for every latency column,
  // and bytes/result still computed from the gen count.
  EXPECT_NE(table.find("t"), std::string::npos);
  std::istringstream lines(table);
  std::string line;
  bool saw_row = false;
  while (std::getline(lines, line)) {
    if (line.find("  t ") != 0 && line.rfind("  t", 0) != 0) continue;
    if (line.find("predicate") != std::string::npos) continue;
    saw_row = true;
    EXPECT_NE(line.find("-"), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_row) << table;
}

TEST(ProvenanceTest, RingCapacityBoundsEngineMemory) {
  auto program = ParseProgram(kJoinProgram);
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(4), LinkModel{}, /*seed=*/1);
  EngineOptions options;
  options.provenance.enabled = true;
  options.provenance.ring_capacity = 2;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok());
  SimTime t = 10'000;
  for (int i = 0; i < 8; ++i, t += 120'000) {
    net.sim().RunUntil(t);
    NodeId node = static_cast<NodeId>((i * 5) % net.node_count());
    Fact f(Intern(i % 2 == 0 ? "r" : "s"),
           {Term::Int(i % 3), Term::Int(node), Term::Int(i)});
    ASSERT_TRUE((*engine)->Inject(node, StreamOp::kInsert, f).ok());
  }
  net.sim().Run();
  // Every node's surviving ring holds at most ring_capacity edges, so the
  // engine-wide total is bounded by capacity * nodes.
  std::vector<ProvenanceEdge> edges = (*engine)->ProvenanceEdges();
  EXPECT_LE(edges.size(), 2u * static_cast<size_t>(net.node_count()));
  EXPECT_FALSE(edges.empty());
}

}  // namespace
}  // namespace deduce
