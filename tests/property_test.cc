// Cross-cutting property tests: randomized workloads and inputs checked
// against executable specifications.

#include <gtest/gtest.h>

#include <set>

#include "deduce/common/rng.h"
#include "deduce/datalog/parser.h"
#include "deduce/eval/incremental.h"
#include "deduce/eval/magic.h"
#include "deduce/eval/seminaive.h"

namespace deduce {
namespace {

// ---------------------------------------------------------------------------
// Windowed incremental maintenance vs from-scratch recomputation over the
// window contents at every step.
// ---------------------------------------------------------------------------

TEST(WindowPropertyTest, IncrementalMatchesWindowedRecompute) {
  constexpr Timestamp kWindow = 500;
  const std::string program_text = R"(
    .decl a(x, n) input window 500.
    .decl b(x, n) input window 500.
    t(X, N1, N2) :- a(X, N1), b(X, N2).
  )";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());

  for (uint64_t seed : {1u, 2u, 3u}) {
    auto engine = IncrementalEngine::Create(*program, IncrementalOptions{});
    ASSERT_TRUE(engine.ok());
    Rng rng(seed);
    struct Base {
      Fact fact;
      Timestamp gen;
      bool deleted = false;
    };
    std::vector<Base> history;
    Timestamp t = 0;
    uint32_t seq = 0;
    for (int step = 0; step < 80; ++step) {
      t += rng.Uniform(10, 120);
      StreamEvent ev;
      ev.time = t;
      // Mostly inserts; sometimes delete a still-alive in-window fact.
      std::vector<size_t> deletable;
      for (size_t i = 0; i < history.size(); ++i) {
        if (!history[i].deleted && history[i].gen + kWindow > t) {
          deletable.push_back(i);
        }
      }
      if (!deletable.empty() && rng.Bernoulli(0.25)) {
        size_t k = deletable[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(deletable.size()) - 1))];
        ev.op = StreamOp::kDelete;
        ev.fact = history[k].fact;
        history[k].deleted = true;
      } else {
        ev.op = StreamOp::kInsert;
        ev.fact = Fact(Intern(rng.Bernoulli(0.5) ? "a" : "b"),
                       {Term::Int(rng.Uniform(0, 3)), Term::Int(step)});
        ev.id = TupleId{0, t, seq++};
        history.push_back(Base{ev.fact, t});
      }
      ASSERT_TRUE((*engine)->Apply(ev, nullptr).ok());

      // Specification: evaluate the program over exactly the base facts
      // whose window still covers time t and that are not deleted.
      std::vector<Fact> in_window;
      for (const Base& b : history) {
        if (!b.deleted && b.gen + kWindow > t) in_window.push_back(b.fact);
      }
      auto expected = EvaluateProgram(*program, in_window);
      ASSERT_TRUE(expected.ok());
      std::set<std::string> got, want;
      for (const Fact& f : (*engine)->AliveFacts(Intern("t"))) {
        got.insert(f.ToString());
      }
      for (const Fact& f : expected->Relation(Intern("t"))) {
        want.insert(f.ToString());
      }
      ASSERT_EQ(got, want) << "seed " << seed << " step " << step << " t="
                           << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Random non-recursive programs: full evaluation vs magic sets on random
// goals, and monotonicity for positive programs.
// ---------------------------------------------------------------------------

struct RandomProgram {
  Program program;
  std::vector<SymbolId> idb;
};

/// Builds a random layered positive program: edb0/edb1 at the bottom, a few
/// derived layers of join/project rules above.
RandomProgram MakeRandomPositiveProgram(Rng* rng, int layers) {
  std::string text;
  std::vector<std::string> previous = {"edb0", "edb1"};
  std::vector<SymbolId> idb;
  for (int layer = 0; layer < layers; ++layer) {
    std::string name = "d" + std::to_string(layer);
    idb.push_back(Intern(name));
    int rules = static_cast<int>(rng->Uniform(1, 2));
    for (int r = 0; r < rules; ++r) {
      const std::string& p1 =
          previous[static_cast<size_t>(rng->Uniform(
              0, static_cast<int64_t>(previous.size()) - 1))];
      const std::string& p2 =
          previous[static_cast<size_t>(rng->Uniform(
              0, static_cast<int64_t>(previous.size()) - 1))];
      switch (rng->Uniform(0, 2)) {
        case 0:  // join
          text += name + "(X, Z) :- " + p1 + "(X, Y), " + p2 + "(Y, Z).\n";
          break;
        case 1:  // swap/project
          text += name + "(Y, X) :- " + p1 + "(X, Y).\n";
          break;
        default:  // filtered copy
          text += name + "(X, Y) :- " + p1 + "(X, Y), X < Y.\n";
          break;
      }
    }
    previous.push_back(name);
  }
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status() << "\n" << text;
  return RandomProgram{std::move(program).value(), std::move(idb)};
}

std::vector<Fact> RandomEdb(Rng* rng, int n) {
  std::vector<Fact> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(Intern(rng->Bernoulli(0.5) ? "edb0" : "edb1"),
                     std::vector<Term>{Term::Int(rng->Uniform(0, 5)),
                                       Term::Int(rng->Uniform(0, 5))});
  }
  return out;
}

TEST(RandomProgramPropertyTest, MagicAgreesWithFullEvaluation) {
  Rng rng(2009);
  for (int trial = 0; trial < 15; ++trial) {
    RandomProgram rp = MakeRandomPositiveProgram(&rng, 3);
    std::vector<Fact> edb = RandomEdb(&rng, 25);
    auto full = EvaluateProgram(rp.program, edb);
    ASSERT_TRUE(full.ok()) << full.status();
    // Random goal over a random derived predicate, first argument bound.
    SymbolId goal_pred = rp.idb[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(rp.idb.size()) - 1))];
    Atom goal(goal_pred,
              {Term::Int(rng.Uniform(0, 5)), Term::Var("Ans")});
    auto magic = MagicEvaluate(rp.program, goal, edb);
    ASSERT_TRUE(magic.ok()) << magic.status();
    std::set<std::string> got, want;
    for (const Fact& f : *magic) got.insert(f.ToString());
    BuiltinRegistry registry = BuiltinRegistry::Default();
    for (const Fact& f : full->Relation(goal_pred)) {
      Subst subst;
      if (SolveMatchTerms(goal.args, f.args(), &subst, registry)) {
        want.insert(f.ToString());
      }
    }
    ASSERT_EQ(got, want) << "trial " << trial;
  }
}

TEST(RandomProgramPropertyTest, PositiveProgramsAreMonotone) {
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    RandomProgram rp = MakeRandomPositiveProgram(&rng, 3);
    std::vector<Fact> small = RandomEdb(&rng, 15);
    std::vector<Fact> big = small;
    for (const Fact& extra : RandomEdb(&rng, 10)) big.push_back(extra);
    auto db_small = EvaluateProgram(rp.program, small);
    auto db_big = EvaluateProgram(rp.program, big);
    ASSERT_TRUE(db_small.ok());
    ASSERT_TRUE(db_big.ok());
    for (SymbolId pred : rp.idb) {
      for (const Fact& f : db_small->Relation(pred)) {
        EXPECT_TRUE(db_big->Contains(f))
            << "monotonicity violated: " << f.ToString();
      }
    }
  }
}

TEST(RandomProgramPropertyTest, IncrementalInsertOnlyEqualsBatch) {
  Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    RandomProgram rp = MakeRandomPositiveProgram(&rng, 2);
    std::vector<Fact> edb = RandomEdb(&rng, 20);
    auto engine = IncrementalEngine::Create(rp.program, IncrementalOptions{});
    ASSERT_TRUE(engine.ok()) << engine.status();
    Timestamp t = 1;
    uint32_t seq = 0;
    for (const Fact& f : edb) {
      StreamEvent ev;
      ev.op = StreamOp::kInsert;
      ev.fact = f;
      ev.id = TupleId{0, t, seq++};
      ev.time = t++;
      ASSERT_TRUE((*engine)->Apply(ev, nullptr).ok());
    }
    auto batch = EvaluateProgram(rp.program, edb);
    ASSERT_TRUE(batch.ok());
    for (SymbolId pred : rp.idb) {
      std::set<std::string> got, want;
      for (const Fact& f : (*engine)->AliveFacts(pred)) {
        got.insert(f.ToString());
      }
      for (const Fact& f : batch->Relation(pred)) want.insert(f.ToString());
      ASSERT_EQ(got, want) << SymbolName(pred) << " trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser fuzz: arbitrary byte soup must produce a Status, never a crash.
// ---------------------------------------------------------------------------

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    size_t len = static_cast<size_t>(rng.Uniform(0, 80));
    for (size_t b = 0; b < len; ++b) {
      text += static_cast<char>(rng.Uniform(1, 255));
    }
    (void)ParseProgram(text);
    (void)ParseTerm(text);
    (void)ParseRule(text);
  }
  SUCCEED();
}

TEST(ParserFuzzTest, MutatedValidProgramsNeverCrash) {
  const std::string valid = R"(
    .decl veh(type, x, t) input window 30.
    cov(L, T) :- veh("enemy", L, T), veh("friendly", L2, T),
                 dist(L, L2) <= 5.
    uncov(L, T) :- veh("enemy", L, T), NOT cov(L, T).
    traj([R2, X | R]) :- traj([X | R]), report(R2), close(X, R2).
  )";
  Rng rng(99);
  for (int i = 0; i < 1500; ++i) {
    std::string text = valid;
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(text.size()) - 1));
      switch (rng.Uniform(0, 2)) {
        case 0:
          text[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126)));
          break;
      }
    }
    (void)ParseProgram(text);  // must not crash
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Term total order: comparison laws on random terms.
// ---------------------------------------------------------------------------

Term RandomTerm(Rng* rng, int depth = 0) {
  switch (rng->Uniform(0, depth >= 2 ? 2 : 3)) {
    case 0:
      return Term::Int(rng->Uniform(-5, 5));
    case 1:
      return Term::Sym(rng->Bernoulli(0.5) ? "a" : "b");
    case 2:
      return Term::Var(rng->Bernoulli(0.5) ? "X" : "Y");
    default: {
      std::vector<Term> args;
      int n = static_cast<int>(rng->Uniform(0, 2));
      for (int i = 0; i < n; ++i) args.push_back(RandomTerm(rng, depth + 1));
      return Term::Function(rng->Bernoulli(0.5) ? "f" : "g", std::move(args));
    }
  }
}

TEST(TermOrderPropertyTest, CompareIsATotalOrder) {
  Rng rng(5150);
  std::vector<Term> terms;
  for (int i = 0; i < 60; ++i) terms.push_back(RandomTerm(&rng));
  for (const Term& a : terms) {
    EXPECT_EQ(a.Compare(a), 0);
    for (const Term& b : terms) {
      // Antisymmetry.
      EXPECT_EQ(a.Compare(b), -b.Compare(a))
          << a.ToString() << " vs " << b.ToString();
      // Consistency with equality.
      if (a == b) {
        EXPECT_EQ(a.Compare(b), 0);
      }
      for (const Term& c : terms) {
        // Transitivity (<=).
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0)
              << a.ToString() << " " << b.ToString() << " " << c.ToString();
        }
      }
    }
  }
}

TEST(TermOrderPropertyTest, HashEqualsForEqualTerms) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    Term t = RandomTerm(&rng);
    // Rebuild structurally.
    auto rebuilt = ParseTerm(t.ToString());
    ASSERT_TRUE(rebuilt.ok()) << t.ToString();
    EXPECT_EQ(*rebuilt, t);
    EXPECT_EQ(rebuilt->Hash(), t.Hash());
  }
}

}  // namespace
}  // namespace deduce
