// Counterfactual-replay tests (DESIGN.md §14): perturbation-spec parsing
// and round trips, scenario v3 serialization compatibility, the
// divergence-attributed diff (determinism across thread counts, node-down
// attribution, cost-delta reconciliation, diff soundness), replay
// violation attribution against the committed phantom reproducer, and the
// provenance-ring truncation satellite.

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "deduce/common/metrics.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/counterfactual/attribution.h"
#include "deduce/engine/counterfactual/counterfactual.h"
#include "deduce/engine/counterfactual/perturb.h"
#include "deduce/engine/engine.h"
#include "deduce/engine/invariants.h"
#include "deduce/engine/provenance.h"
#include "deduce/engine/scenario.h"
#include "deduce/net/network.h"

namespace deduce {
namespace {

// The committed tests/scenarios/partition.scn, inlined so the test binary
// has no data-path dependency. Keep the two in sync.
constexpr char kPartitionScenario[] = R"(# deduce chaos scenario v1
seed 7
grid 4
loss 0
retries 0
reliable 1
repair 0
anti_entropy_period 0
checksum 0
rto_jitter 0.1
storage row
[program]
.decl r/3 input.
.decl s/3 input.
t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
[events]
40000 1 + r(1, 1, 1).
60000 5 + s(1, 5, 2).
90000 5 + r(2, 5, 3).
120000 9 + s(2, 9, 4).
400000 6 + r(3, 6, 5).
430000 10 + s(3, 10, 6).
[faults]
cut 200000 0,1,4,5,8,9,12,13 -> 2,3,6,7,10,11,14,15
cut 200000 2,3,6,7,10,11,14,15 -> 0,1,4,5,8,9,12,13
heal 550000 0,1,4,5,8,9,12,13 -> 2,3,6,7,10,11,14,15
heal 550000 2,3,6,7,10,11,14,15 -> 0,1,4,5,8,9,12,13
[end]
)";

// The committed phantom-after-lost-delete.known-violation.scn schedule:
// corruption drops the retraction of s(3, 0, 26) until the retry budget
// runs out, leaving t(3, 5, 0, 24, 26) alive as a soundness phantom.
constexpr char kPhantomScenario[] = R"(# deduce chaos scenario v1
seed 7
grid 4
loss 0
retries 0
reliable 1
repair 0
anti_entropy_period 0
checksum 1
rto_jitter 0.1
storage row
[program]
.decl r/3 input.
.decl s/3 input.
t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
[events]
1163587 5 + r(3, 5, 24).
1239371 6 + s(3, 6, 25).
1338172 0 + s(3, 0, 26).
1538231 0 - s(3, 0, 26).
[faults]
corrupt 669372 * -> * rate=0.3
[end]
)";

Scenario MustParse(const char* text) {
  auto s = Scenario::FromText(text);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return *s;
}

// ---------------------------------------------------------------------
// Perturbation spec grammar
// ---------------------------------------------------------------------

TEST(PerturbTest, SpecRoundTripsEveryKind) {
  const char* specs[] = {
      "node=5,down",
      "link=3-7,cut",
      "inject=s(1, 5, 2),drop",
      "budget=replicas,4",
      "budget=inflight,2",
      "budget=eval,1",
      "budget=ingress,8",
      "tenant=t1,remove",
      "node=0,down;link=1-2,cut;budget=eval,3",
  };
  for (const char* spec : specs) {
    auto parsed = ParsePerturbationSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status().ToString();
    EXPECT_EQ(FormatPerturbationSpec(*parsed), spec);
    // Parse of the canonical form is the identity.
    auto again = ParsePerturbationSpec(FormatPerturbationSpec(*parsed));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *parsed);
  }
}

TEST(PerturbTest, FactTextWithCommasParses) {
  // The action separator is the LAST comma: fact arguments keep theirs.
  auto p = ParsePerturbation("inject=t(1, 2, 3),drop");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->kind, Perturbation::Kind::kInjectDrop);
  EXPECT_EQ(p->fact, "t(1, 2, 3)");
}

TEST(PerturbTest, MalformedSpecsAreRejected) {
  const char* bad[] = {
      "",                      // empty spec
      "frob=3,down",           // unknown kind
      "node=3",                // missing action
      "node=x,down",           // non-numeric node
      "node=3,explode",        // unknown action
      "link=3,cut",            // malformed endpoint pair
      "budget=replicas,0",     // cap must be positive
      "budget=warp,4",         // unknown budget kind
      "inject=t(1) :- r(1),drop",  // rules are not facts
  };
  for (const char* spec : bad) {
    auto parsed = ParsePerturbationSpec(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << spec;
  }
}

// ---------------------------------------------------------------------
// Scenario v3 serialization
// ---------------------------------------------------------------------

TEST(ScenarioV3Test, PerturbBlockRoundTripsAndV3HeaderOnlyWhenPresent) {
  Scenario base = MustParse(kPartitionScenario);
  // No perturbations: ToText must NOT emit a v3 header, keeping every
  // committed v1/v2 reproducer byte-identical under a load/save cycle.
  EXPECT_EQ(base.ToText().find("scenario v3"), std::string::npos);

  // Property-style sweep: every perturbation kind and a few combinations
  // survive ToText -> FromText -> ToText unchanged.
  std::vector<std::vector<std::string>> blocks = {
      {"node=5,down"},
      {"link=3-7,cut"},
      {"inject=s(1, 5, 2),drop"},
      {"budget=replicas,4"},
      {"tenant=t0,remove"},
      {"node=1,down", "link=0-1,cut", "budget=ingress,2"},
  };
  for (const auto& block : blocks) {
    Scenario s = base;
    for (const std::string& clause : block) {
      auto p = ParsePerturbation(clause);
      ASSERT_TRUE(p.ok()) << clause;
      s.perturbations.push_back(*p);
    }
    std::string text = s.ToText();
    EXPECT_NE(text.find("# deduce chaos scenario v3"), std::string::npos);
    EXPECT_NE(text.find("[perturb]"), std::string::npos);
    auto parsed = Scenario::FromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->perturbations, s.perturbations);
    EXPECT_EQ(parsed->ToText(), text);
  }
}

TEST(ScenarioV3Test, V1AndV2FilesStillParse) {
  EXPECT_TRUE(Scenario::FromText(kPartitionScenario).ok());
  Scenario base = MustParse(kPartitionScenario);
  // A v2 file is what ToText emits for a perturbation-free scenario.
  std::string v2 = base.ToText();
  EXPECT_NE(v2.find("# deduce chaos scenario v2"), std::string::npos);
  auto parsed = Scenario::FromText(v2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->perturbations.empty());
}

TEST(ScenarioV3Test, UnknownPerturbationKindIsAParseError) {
  Scenario base = MustParse(kPartitionScenario);
  std::string text = base.ToText();
  text.replace(text.find("scenario v2"), 11, "scenario v3");
  text.replace(text.find("[end]"), 5, "[perturb]\nwarp=3,down\n[end]");
  auto parsed = Scenario::FromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unknown perturbation kind"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ScenarioV3Test, ApplyPerturbationsValidates) {
  Scenario base = MustParse(kPartitionScenario);
  // node out of the 4x4 grid
  base.perturbations = {*ParsePerturbation("node=99,down")};
  EXPECT_FALSE(ApplyPerturbations(base).ok());
  // dropping an injection no event carries explains nothing
  base.perturbations = {*ParsePerturbation("inject=zz(1),drop")};
  EXPECT_FALSE(ApplyPerturbations(base).ok());
  // scenario files define no tenants
  base.perturbations = {*ParsePerturbation("tenant=t0,remove")};
  EXPECT_FALSE(ApplyPerturbations(base).ok());
  // a valid drop removes exactly the matching events
  base.perturbations = {*ParsePerturbation("inject=s(1, 5, 2),drop")};
  auto applied = ApplyPerturbations(base);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->events.size(), base.events.size() - 1);
  EXPECT_TRUE(applied->perturbations.empty());
}

// ---------------------------------------------------------------------
// The counterfactual diff
// ---------------------------------------------------------------------

TEST(CounterfactualTest, NodeDownVanishesTuplesAttributedToTheDownedNode) {
  Scenario base = MustParse(kPartitionScenario);
  auto perturbs = ParsePerturbationSpec("node=5,down");
  ASSERT_TRUE(perturbs.ok());
  auto result = RunCounterfactual(base, *perturbs, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ChangeExplanation& diff = result->explanation;

  // Node 5 carried s(1, 5, 2) and r(2, 5, 3): their join results must
  // vanish, attributed to a derivation edge on the downed node.
  ASSERT_GE(diff.vanished.size(), 1u);
  bool on_downed_node = false;
  for (const DiffEntry& e : diff.vanished) {
    EXPECT_NE(e.divergence, "unknown") << e.fact_text;
    if (e.node == 5) on_downed_node = true;
  }
  EXPECT_TRUE(on_downed_node)
      << "no vanished tuple attributed to an edge on node 5";
  EXPECT_TRUE(diff.appeared.empty());

  // Diff soundness holds: vanished within base oracle, appeared within
  // perturbed oracle.
  EXPECT_TRUE(diff.soundness.empty()) << diff.soundness.front();

  // Cost reconciliation: the per-predicate message/byte deltas sum
  // exactly to the difference of the two `dlog stats` grand totals.
  int64_t dmsgs = 0, dbytes = 0;
  for (const auto& [pred, d] : diff.cost_by_pred) {
    dmsgs += d.messages;
    dbytes += d.bytes;
  }
  EXPECT_EQ(dmsgs, static_cast<int64_t>(diff.perturbed_messages) -
                       static_cast<int64_t>(diff.base_messages));
  EXPECT_EQ(dbytes, static_cast<int64_t>(diff.perturbed_bytes) -
                        static_cast<int64_t>(diff.base_bytes));
}

TEST(CounterfactualTest, ExplanationIsByteIdenticalAcrossThreadCounts) {
  Scenario base = MustParse(kPartitionScenario);
  auto perturbs = ParsePerturbationSpec("node=5,down");
  ASSERT_TRUE(perturbs.ok());
  std::string reference;
  for (int threads : {1, 4, 8}) {
    CounterfactualOptions options;
    options.threads = threads;
    auto result = RunCounterfactual(base, *perturbs, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string text = result->explanation.Format() +
                       result->explanation.ToJsonl();
    if (reference.empty()) {
      reference = text;
    } else {
      EXPECT_EQ(text, reference) << "threads=" << threads;
    }
  }
}

TEST(CounterfactualTest, InjectDropVanishesOnlyTheDependentResults) {
  Scenario base = MustParse(kPartitionScenario);
  auto perturbs = ParsePerturbationSpec("inject=s(1, 5, 2),drop");
  ASSERT_TRUE(perturbs.ok());
  auto result = RunCounterfactual(base, *perturbs, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ChangeExplanation& diff = result->explanation;
  ASSERT_EQ(diff.vanished.size(), 1u);
  EXPECT_EQ(diff.vanished[0].fact_text, "t(1, 1, 5, 1, 2)");
  EXPECT_EQ(diff.vanished[0].divergence, "inject");
  EXPECT_TRUE(diff.appeared.empty());
  EXPECT_TRUE(diff.soundness.empty());
}

TEST(CounterfactualTest, EmptyPerturbationListIsRejected) {
  Scenario base = MustParse(kPartitionScenario);
  EXPECT_FALSE(RunCounterfactual(base, {}, {}).ok());
}

TEST(CounterfactualTest, SavedPerturbedWorldDiffsCleanAgainstItself) {
  Scenario base = MustParse(kPartitionScenario);
  auto perturbs = ParsePerturbationSpec("node=5,down");
  ASSERT_TRUE(perturbs.ok());
  auto result = RunCounterfactual(base, *perturbs, {});
  ASSERT_TRUE(result.ok());
  // The saved perturbed world keeps its declarative block (v3 text)...
  EXPECT_EQ(result->perturbed.perturbations, *perturbs);
  // ...and `replay --diff` of a world against itself reports no change.
  auto self = DiffScenarios(result->perturbed, result->perturbed, {});
  ASSERT_TRUE(self.ok()) << self.status().ToString();
  EXPECT_TRUE(self->explanation.unchanged());
  EXPECT_TRUE(self->explanation.soundness.empty());
}

TEST(CounterfactualTest, CfdiffRecordsRoundTripThroughTraceParser) {
  Scenario base = MustParse(kPartitionScenario);
  auto perturbs = ParsePerturbationSpec("node=5,down");
  ASSERT_TRUE(perturbs.ok());
  auto result = RunCounterfactual(base, *perturbs, {});
  ASSERT_TRUE(result.ok());
  std::istringstream in(result->explanation.ToJsonl());
  std::string line;
  size_t entries = 0, costs = 0;
  while (std::getline(in, line)) {
    auto r = TraceRecord::FromJson(line);
    ASSERT_TRUE(r.ok()) << r.status() << " <- " << line;
    EXPECT_EQ(r->kind, "cfdiff");
    EXPECT_EQ(r->schema, 3);
    if (r->cf == "cost") {
      EXPECT_EQ(r->phase, "cost");
      ++costs;
    } else {
      EXPECT_TRUE(r->cf == "appeared" || r->cf == "vanished" ||
                  r->cf == "flipped")
          << r->cf;
      EXPECT_FALSE(r->fact.empty());
      ++entries;
    }
    // Round trip: parse(ToJson(parse(line))) is the identity.
    auto again = TraceRecord::FromJson(r->ToJson());
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(*again == *r);
  }
  EXPECT_GE(entries, 1u);
  EXPECT_GE(costs, 1u);

  // TraceStats counts cfdiff records without warning and attributes them
  // no traffic: a cfdiff stream describes two runs, it is not a run.
  std::istringstream stats_in(result->explanation.ToJsonl());
  std::vector<std::string> errors;
  TraceStats stats = TraceStats::Aggregate(stats_in, &errors);
  EXPECT_EQ(stats.cfdiffs, entries + costs);
  EXPECT_EQ(stats.total_messages, 0u);
  EXPECT_TRUE(stats.unknown_kinds.empty());
  EXPECT_TRUE(errors.empty());
}

TEST(CounterfactualTest, DiffSoundnessCatchesFabricatedEntries) {
  Scenario base = MustParse(kPartitionScenario);
  auto outcome = RunScenario(base);
  ASSERT_TRUE(outcome.ok());

  ChangeExplanation diff;
  DiffEntry bogus;
  bogus.fact = Fact(Intern("t"), {Term::Int(9), Term::Int(9), Term::Int(9),
                                  Term::Int(9), Term::Int(9)});
  bogus.fact_text = bogus.fact.ToString();
  bogus.change = DiffEntry::Change::kVanished;
  diff.vanished.push_back(bogus);
  std::vector<std::string> violations =
      CheckDiffSoundness(diff, outcome->oracle, outcome->oracle);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("vanished tuple"), std::string::npos);
  EXPECT_NE(violations[0].find("t(9, 9, 9, 9, 9)"), std::string::npos);

  diff.vanished.clear();
  bogus.change = DiffEntry::Change::kAppeared;
  diff.appeared.push_back(bogus);
  violations = CheckDiffSoundness(diff, outcome->oracle, outcome->oracle);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("appeared tuple"), std::string::npos);
}

// ---------------------------------------------------------------------
// Replay violation attribution
// ---------------------------------------------------------------------

TEST(AttributionTest, PhantomAfterLostDeleteNamesTheCorruptedRetraction) {
  Scenario scenario = MustParse(kPhantomScenario);
  // The committed reproducer still violates soundness...
  auto outcome = RunScenario(scenario);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->report.ok());

  // ...and a provenance re-run attributes the stale tuple to its
  // retraction that entered the system but never took effect (the
  // corrupted-deletion signature).
  std::ostringstream sink;
  TraceWriter writer;
  writer.OpenStream(&sink);
  ScenarioRunOptions run;
  run.provenance = true;
  run.trace = &writer;
  auto prov_outcome = RunScenario(scenario, run);
  writer.Close();
  ASSERT_TRUE(prov_outcome.ok());
  // Provenance changes no simulated counter: the violation reproduces.
  ASSERT_FALSE(prov_outcome->report.ok());

  std::vector<TraceRecord> records;
  std::istringstream in(sink.str());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto r = TraceRecord::FromJson(line);
    ASSERT_TRUE(r.ok()) << line;
    records.push_back(std::move(*r));
  }

  auto program = ParseProgram(scenario.program);
  ASSERT_TRUE(program.ok());
  auto rule = ParseRule("t(3, 5, 0, 24, 26).");
  ASSERT_TRUE(rule.ok());
  Fact phantom(rule->head.predicate, rule->head.args);
  std::string chain = AttributeViolation(records, *program, phantom);
  EXPECT_NE(chain.find("causal chain for t(3, 5, 0, 24, 26)"),
            std::string::npos)
      << chain;
  EXPECT_NE(chain.find("retraction of s(3, 0, 26)"), std::string::npos)
      << chain;
  EXPECT_NE(chain.find("never took effect"), std::string::npos) << chain;
  // Deterministic: a second identical run produces the same block.
  EXPECT_EQ(chain, AttributeViolation(records, *program, phantom));
}

// ---------------------------------------------------------------------
// Provenance-ring capacity (satellite: prov.evictions + truncation)
// ---------------------------------------------------------------------

TEST(ProvenanceCapacityTest, TinyRingEvictsWarnsAndTruncatesExplain) {
  auto program = ParseProgram(
      ".decl r/3 input.\n"
      ".decl s/3 input.\n"
      "t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).\n");
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(4), LinkModel{}, /*seed=*/5);
  MetricsRegistry metrics;
  EngineOptions options;
  options.provenance.enabled = true;
  options.provenance_capacity = 2;  // EngineOptions override, not the
                                    // ProvenanceOptions default of 512
  options.metrics = &metrics;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok());
  // Every injection enters at node 0: its capacity-2 ring keeps only the
  // last two inject edges, evicting the lineage of the earlier keys —
  // while a join result's home ring (one rule edge + one gen edge) fits
  // exactly, so its surviving rule edge names input tids the rings can no
  // longer resolve.
  SimTime t = 10'000;
  for (int i = 0; i < 8; ++i, t += 120'000) {
    net.sim().RunUntil(t);
    Fact f(Intern(i % 2 == 0 ? "r" : "s"),
           {Term::Int(i / 2), Term::Int(i), Term::Int(i)});
    ASSERT_TRUE((*engine)->Inject(0, StreamOp::kInsert, f).ok());
  }
  net.sim().Run();

  // The capacity-1 rings evicted lineage, and the warn-once counter saw it.
  EXPECT_GT(metrics.CounterValue(-1, "prov", "evictions"), 0u);

  // Explaining over the surviving ring-resident edges (eviction/reboot
  // recovery path — the streamed trace never truncates) must report the
  // truncation instead of presenting a silently wrong tree.
  std::vector<ProvenanceEdge> edges = (*engine)->ProvenanceEdges();
  ASSERT_FALSE(edges.empty());
  std::vector<TraceRecord> records;
  records.reserve(edges.size());
  for (const ProvenanceEdge& e : edges) records.push_back(e.ToTraceRecord());

  Database results = (*engine)->ResultDatabase();
  ASSERT_GT(results.size(), 0u);
  bool truncated = false;
  for (SymbolId pred : results.Predicates()) {
    for (const Fact& f : results.Relation(pred)) {
      auto report = ExplainFact(records, *program, f);
      if (!report.ok()) continue;
      if (report->unresolved_tids > 0) {
        EXPECT_NE(report->Format().find("lineage truncated"),
                  std::string::npos)
            << report->Format();
        truncated = true;
      }
    }
  }
  EXPECT_TRUE(truncated)
      << "no explain tree over the capacity-1 rings reported truncation";
}

TEST(ProvenanceCapacityTest, DefaultCapacityDoesNotTruncateOrEvict) {
  Scenario base = MustParse(kPartitionScenario);
  MetricsRegistry metrics;
  ScenarioRunOptions run;
  run.provenance = true;
  run.metrics = &metrics;
  auto outcome = RunScenario(base, run);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(metrics.CounterValue(-1, "prov", "evictions"), 0u);
}

}  // namespace
}  // namespace deduce
