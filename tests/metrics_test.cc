// Observability subsystem tests: metrics-registry semantics, the
// zero-cost-when-off contract, JSONL trace round-trips, same-seed
// determinism, and agreement between `dlog stats`-style trace aggregation
// and the NetworkStats/EngineStats counters it must reproduce.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "deduce/common/metrics.h"
#include "deduce/common/trace.h"
#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"

namespace deduce {
namespace {

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.Add(0, "net", "sent", 3);
  reg.Add(0, "net", "sent", 2);
  reg.Add(1, "net", "sent", 10);
  reg.Set(2, "engine", "queue_depth", 7);
  reg.Set(2, "engine", "queue_depth", 4);
  reg.Observe(0, "latency", "hop_us", 100);
  reg.Observe(0, "latency", "hop_us", 900);

  EXPECT_EQ(reg.CounterValue(0, "net", "sent"), 5u);
  EXPECT_EQ(reg.CounterValue(1, "net", "sent"), 10u);
  EXPECT_EQ(reg.CounterValue(9, "net", "sent"), 0u);
  EXPECT_EQ(reg.CounterTotal("net", "sent"), 15u);

  const auto& entries = reg.entries();
  auto git = entries.find(MetricsRegistry::Key{2, "engine", "queue_depth"});
  ASSERT_NE(git, entries.end());
  EXPECT_EQ(git->second.kind, MetricsRegistry::Kind::kGauge);
  EXPECT_EQ(git->second.gauge, 4);

  auto hit = entries.find(MetricsRegistry::Key{0, "latency", "hop_us"});
  ASSERT_NE(hit, entries.end());
  EXPECT_EQ(hit->second.kind, MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(hit->second.histogram.count, 2u);
  EXPECT_EQ(hit->second.histogram.sum, 1000);
  EXPECT_EQ(hit->second.histogram.min, 100);
  EXPECT_EQ(hit->second.histogram.max, 900);
}

TEST(MetricsRegistryTest, DisabledRegistryStaysExactlyEmpty) {
  MetricsRegistry reg;
  reg.Disable();
  reg.Add(0, "net", "sent", 3);
  reg.Set(0, "engine", "gauge", 1);
  reg.Observe(0, "latency", "us", 5);
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.CounterTotal("net", "sent"), 0u);
  // Re-enabling starts recording again without residue.
  reg.Enable();
  reg.Add(0, "net", "sent", 1);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, HistogramBucketsArePowerOfTwo) {
  HistogramData h;
  h.Observe(0);     // bucket 0: <= 0
  h.Observe(1);     // bucket 1: [1, 2)
  h.Observe(1023);  // bucket 10: [512, 1024)
  h.Observe(int64_t{1} << 60);  // overflow bucket
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.buckets[HistogramData::kBuckets - 1], 1u);
  EXPECT_EQ(HistogramData::BucketUpperBound(0), 0);
  EXPECT_EQ(HistogramData::BucketUpperBound(1), 1);
  EXPECT_EQ(HistogramData::BucketUpperBound(10), 1023);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a;
  a.Add(1, "net", "sent", 2);
  a.Add(0, "net", "sent", 1);
  a.Set(0, "engine", "g", 3);
  MetricsRegistry b;
  b.Set(0, "engine", "g", 3);
  b.Add(0, "net", "sent", 1);
  b.Add(1, "net", "sent", 2);
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_NE(a.ToJson().find("\"component\":\"net\""), std::string::npos);
}

TEST(MetricsRegistryTest, MergeFromAddsCountersAndPoolsHistograms) {
  MetricsRegistry a;
  a.Add(0, "net", "sent", 5);
  a.Set(0, "engine", "g", 1);
  a.Observe(0, "lat", "us", 100);
  a.Observe(0, "lat", "us", 3'000);

  MetricsRegistry b;
  b.Add(0, "net", "sent", 7);
  b.Add(1, "net", "sent", 2);       // key only in b
  b.Set(0, "engine", "g", 9);       // gauge: last merged wins
  b.Observe(0, "lat", "us", 40);

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue(0, "net", "sent"), 12u);
  EXPECT_EQ(a.CounterValue(1, "net", "sent"), 2u);
  const auto& entries = a.entries();
  auto git = entries.find(MetricsRegistry::Key{0, "engine", "g"});
  ASSERT_NE(git, entries.end());
  EXPECT_EQ(git->second.gauge, 9);
  auto hit = entries.find(MetricsRegistry::Key{0, "lat", "us"});
  ASSERT_NE(hit, entries.end());
  const HistogramData& h = hit->second.histogram;
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 3'140);
  EXPECT_EQ(h.min, 40);
  EXPECT_EQ(h.max, 3'000);
}

TEST(MetricsRegistryTest, MergeInOrderEqualsSerialRecording) {
  // Recording trial 0 then trial 1 into one registry must equal merging
  // per-trial registries in the same order — the RunTrials reduction rule.
  auto record = [](MetricsRegistry* reg, int trial) {
    reg->Add(trial, "net", "sent", static_cast<uint64_t>(10 + trial));
    reg->Add(-1, "net", "total", 1);
    reg->Set(-1, "engine", "last_trial", trial);
    reg->Observe(-1, "lat", "us", 100 * (trial + 1));
  };
  MetricsRegistry serial;
  record(&serial, 0);
  record(&serial, 1);

  MetricsRegistry t0, t1, merged;
  record(&t0, 0);
  record(&t1, 1);
  merged.MergeFrom(t0);
  merged.MergeFrom(t1);
  EXPECT_EQ(merged.ToJson(), serial.ToJson());
}

TEST(MetricsRegistryTest, ToJsonCanExcludeWallClockTiming) {
  MetricsRegistry reg;
  reg.Add(0, "net", "sent", 1);
  reg.Observe(-1, "timing", "rule_eval", 1234);  // wall clock: excluded form
  std::string with = reg.ToJson();
  std::string without = reg.ToJson(/*include_timing=*/false);
  EXPECT_NE(with.find("\"timing\""), std::string::npos);
  EXPECT_EQ(without.find("\"timing\""), std::string::npos);
  EXPECT_NE(without.find("\"component\":\"net\""), std::string::npos);
}

TEST(TraceRecordTest, JsonRoundTrip) {
  TraceRecord r;
  r.time = 123456;
  r.node = 3;
  r.kind = "hop";
  r.phase = "sweep";
  r.pred = "t\"x\\y";  // escaping must survive the round trip
  r.src = 3;
  r.dst = 7;
  r.bytes = 99;
  r.seq = 12;
  r.attempts = 2;
  r.delivered = false;
  StatusOr<TraceRecord> back = TraceRecord::FromJson(r.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == r);
}

TEST(TraceRecordTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(TraceRecord::FromJson("not json").ok());
  EXPECT_FALSE(TraceRecord::FromJson("{\"time\":1}").ok());  // missing kind
  EXPECT_FALSE(
      TraceRecord::FromJson("{\"kind\":\"hop\",\"bytes\":\"many\"").ok());
  EXPECT_FALSE(
      TraceRecord::FromJson("{\"kind\":\"hop\",\"time\":12x}").ok());
  // Unknown keys are tolerated (forward compatibility).
  StatusOr<TraceRecord> ok =
      TraceRecord::FromJson("{\"kind\":\"hop\",\"future_field\":1}");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->kind, "hop");
}

TEST(TraceWriterTest, UnopenedWriterIsInert) {
  TraceWriter w;
  EXPECT_FALSE(w.on());
  w.Emit(TraceRecord{});
  EXPECT_EQ(w.lines_written(), 0u);
  std::ostringstream out;
  w.OpenStream(&out);
  EXPECT_TRUE(w.on());
  TraceRecord r;
  r.kind = "inject";
  w.Emit(r);
  EXPECT_EQ(w.lines_written(), 1u);
  EXPECT_NE(out.str().find("\"kind\":\"inject\""), std::string::npos);
}

TEST(ScopedSpanTest, NestedSpansRecordSeparateTimingHistograms) {
  MetricsRegistry reg;
  {
    ScopedSpan outer(&reg, 0, "outer");
    {
      ScopedSpan inner(&reg, 0, "inner");
    }
    {
      ScopedSpan inner(&reg, 0, "inner");  // same name: pools into one cell
    }
  }
  const auto& entries = reg.entries();
  auto oit = entries.find(MetricsRegistry::Key{0, "timing", "outer"});
  auto iit = entries.find(MetricsRegistry::Key{0, "timing", "inner"});
  ASSERT_NE(oit, entries.end());
  ASSERT_NE(iit, entries.end());
  EXPECT_EQ(oit->second.kind, MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(oit->second.histogram.count, 1u);
  EXPECT_EQ(iit->second.histogram.count, 2u);
  // The inner spans ran strictly inside the outer one.
  EXPECT_LE(iit->second.histogram.sum, oit->second.histogram.sum);

  // A null registry and a disabled registry never read the clock.
  { ScopedSpan none(nullptr, 0, "never"); }
  MetricsRegistry off;
  off.Disable();
  { ScopedSpan dis(&off, 0, "never"); }
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(entries.find(MetricsRegistry::Key{0, "timing", "never"}),
            entries.end());
}

TEST(TraceWriterTest, DestructionFlushesBufferedRecordsToDisk) {
  const char* path = "trace_writer_flush_test.jsonl";
  {
    TraceWriter w;
    ASSERT_TRUE(w.OpenFile(path).ok());
    TraceRecord r;
    r.kind = "inject";
    r.pred = "flushed";
    w.Emit(r);
    EXPECT_EQ(w.lines_written(), 1u);
    // No Close(): the writer goes out of scope with the record buffered.
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"pred\":\"flushed\""), std::string::npos);
  std::remove(path);
}

TEST(TraceStatsTest, MixedSchemaTraceParsesWithWarnOncePerUnknownKind) {
  // A v1 trace concatenated with v2 records, two records of an unknown
  // kind, and one record from a future schema: everything must aggregate
  // without a single bad line, unknown kinds are counted and warned about
  // exactly once, and future-schema records are skipped (not guessed at).
  std::string trace =
      "{\"time\":1,\"node\":0,\"kind\":\"inject\",\"phase\":\"inject\","
      "\"pred\":\"r\",\"src\":-1,\"dst\":-1,\"bytes\":0,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true}\n"
      "{\"time\":2,\"node\":0,\"kind\":\"hop\",\"phase\":\"store\","
      "\"pred\":\"r\",\"src\":0,\"dst\":1,\"bytes\":40,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true}\n"
      "{\"time\":3,\"node\":1,\"kind\":\"deriv\",\"phase\":\"result\","
      "\"pred\":\"t\",\"src\":-1,\"dst\":-1,\"bytes\":0,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true,\"schema\":2,"
      "\"tids\":\"00000000000000aa\",\"fact\":\"t(1)\",\"rule\":0,"
      "\"lat\":77}\n"
      "{\"time\":4,\"node\":1,\"kind\":\"wibble\",\"phase\":\"x\","
      "\"pred\":\"\",\"src\":-1,\"dst\":-1,\"bytes\":0,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true}\n"
      "{\"time\":5,\"node\":1,\"kind\":\"wibble\",\"phase\":\"x\","
      "\"pred\":\"\",\"src\":-1,\"dst\":-1,\"bytes\":0,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true}\n"
      "{\"time\":6,\"node\":1,\"kind\":\"hop\",\"phase\":\"store\","
      "\"pred\":\"r\",\"src\":0,\"dst\":1,\"bytes\":40,\"seq\":0,"
      "\"attempts\":1,\"delivered\":true,\"schema\":4}\n";
  std::istringstream in(trace);
  std::vector<std::string> errors;
  TraceStats stats = TraceStats::Aggregate(in, &errors);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(stats.records, 6u);
  EXPECT_EQ(stats.total_messages, 1u);  // the schema-4 hop was skipped
  EXPECT_EQ(stats.injects, 1u);
  EXPECT_EQ(stats.derivs, 1u);
  EXPECT_EQ(stats.future_records, 1u);
  ASSERT_EQ(stats.unknown_kinds.count("wibble"), 1u);
  EXPECT_EQ(stats.unknown_kinds.at("wibble"), 2u);
  size_t unknown_warns = 0, future_warns = 0;
  for (const std::string& e : errors) {
    if (e.find("wibble") != std::string::npos) ++unknown_warns;
    if (e.find("schema") != std::string::npos) ++future_warns;
  }
  EXPECT_EQ(unknown_warns, 1u);  // warn once per kind, not per record
  EXPECT_EQ(future_warns, 1u);
  // The latency table reflects the one deriv record.
  ASSERT_EQ(stats.latency_by_pred.count("t"), 1u);
  EXPECT_EQ(stats.latency_by_pred.at("t").results, 1u);
  EXPECT_EQ(stats.latency_by_pred.at("t").lat_sum, 77);
}

// --- end-to-end: a traced simulation ---------------------------------------

constexpr char kJoinProgram[] = R"(
  .decl r/3 input.
  .decl s/3 input.
  t(K, N1, N2) :- r(K, N1, I1), s(K, N2, I2).
)";

struct TracedRun {
  std::string trace;
  MetricsRegistry registry;
  uint64_t net_messages = 0;
  uint64_t net_bytes = 0;
  uint64_t mac_ack_failures = 0;
  EngineStats engine_stats;
};

TracedRun RunTraced(uint64_t seed, bool lossy, bool with_observers) {
  auto program = ParseProgram(kJoinProgram);
  EXPECT_TRUE(program.ok()) << program.status();
  LinkModel link;
  if (lossy) {
    link.loss_rate = 0.2;
    link.retries = 1;
  }
  Network net(Topology::Grid(4), link, seed);
  TracedRun run;
  std::ostringstream trace_out;
  TraceWriter writer;
  EngineOptions options;
  if (lossy) options.transport.reliable = true;
  if (with_observers) {
    writer.OpenStream(&trace_out);
    options.metrics = &run.registry;
    options.trace = &writer;
  }
  auto engine = DistributedEngine::Create(&net, *program, options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  SimTime t = 10'000;
  for (int i = 0; i < 8; ++i, t += 120'000) {
    net.sim().RunUntil(t);
    NodeId node = static_cast<NodeId>((i * 5) % net.node_count());
    Fact f(Intern(i % 2 == 0 ? "r" : "s"),
           {Term::Int(i % 3), Term::Int(node), Term::Int(i)});
    Status st = (*engine)->Inject(node, StreamOp::kInsert, f);
    EXPECT_TRUE(st.ok()) << st;
  }
  net.sim().Run();
  run.trace = trace_out.str();
  run.net_messages = net.stats().TotalMessages();
  run.net_bytes = net.stats().TotalBytes();
  run.mac_ack_failures = net.stats().mac_ack_failures;
  run.engine_stats = (*engine)->stats();
  return run;
}

TEST(EngineObservabilityTest, TraceAggregationReproducesStatsTotals) {
  TracedRun run = RunTraced(/*seed=*/11, /*lossy=*/true,
                            /*with_observers=*/true);
  std::istringstream in(run.trace);
  std::vector<std::string> errors;
  TraceStats stats = TraceStats::Aggregate(in, &errors);
  EXPECT_EQ(stats.bad_lines, 0u) << (errors.empty() ? "" : errors[0]);

  // `dlog stats` must reproduce the engine/network totals exactly: every
  // link-layer attempt is one hop-record message, every Inject one inject
  // record, every RTO retransmission one retransmit record.
  EXPECT_EQ(stats.total_messages, run.net_messages);
  EXPECT_EQ(stats.total_bytes, run.net_bytes);
  EXPECT_EQ(stats.injects, run.engine_stats.tuples_injected);
  EXPECT_EQ(stats.retransmits, run.engine_stats.retransmissions);
  EXPECT_EQ(stats.dropped_hops, run.mac_ack_failures);
  EXPECT_GT(run.engine_stats.retransmissions, 0u);  // lossy run really retried

  // Phase attribution found real storage and sweep traffic.
  uint64_t store_msgs = 0, sweep_msgs = 0;
  for (const auto& [key, cell] : stats.by_phase_pred) {
    if (key.first == "store") store_msgs += cell.messages;
    if (key.first == "sweep") sweep_msgs += cell.messages;
  }
  EXPECT_GT(store_msgs, 0u);
  EXPECT_GT(sweep_msgs, 0u);
  EXPECT_NE(stats.ToTable().find("per-phase traffic"), std::string::npos);

  // The registry's live per-phase counters agree with the trace totals.
  uint64_t reg_msgs = 0;
  for (const auto& [key, entry] : run.registry.entries()) {
    if (std::get<1>(key) == "traffic" &&
        std::get<2>(key).rfind("msgs_", 0) == 0) {
      reg_msgs += entry.counter;
    }
  }
  EXPECT_EQ(reg_msgs, run.net_messages);
}

TEST(EngineObservabilityTest, SameSeedRunsAreDeterministic) {
  TracedRun a = RunTraced(/*seed=*/7, /*lossy=*/true, /*with_observers=*/true);
  TracedRun b = RunTraced(/*seed=*/7, /*lossy=*/true, /*with_observers=*/true);
  EXPECT_EQ(a.trace, b.trace);

  // Registries must match entry-for-entry outside the reserved "timing"
  // component (span timers measure wall clock and are exempt by design).
  auto filtered = [](const MetricsRegistry& reg) {
    std::vector<std::pair<MetricsRegistry::Key, uint64_t>> out;
    for (const auto& [key, entry] : reg.entries()) {
      if (std::get<1>(key) == "timing") continue;
      out.emplace_back(key, entry.kind == MetricsRegistry::Kind::kGauge
                                ? static_cast<uint64_t>(entry.gauge)
                                : entry.counter);
    }
    return out;
  };
  EXPECT_EQ(filtered(a.registry), filtered(b.registry));
}

TEST(EngineObservabilityTest, ObserversOffRecordNothingAndChangeNothing) {
  TracedRun off = RunTraced(/*seed=*/7, /*lossy=*/true,
                            /*with_observers=*/false);
  TracedRun on = RunTraced(/*seed=*/7, /*lossy=*/true,
                           /*with_observers=*/true);
  EXPECT_TRUE(off.registry.empty());
  EXPECT_TRUE(off.trace.empty());
  // Observability must be read-only: identical traffic either way.
  EXPECT_EQ(off.net_messages, on.net_messages);
  EXPECT_EQ(off.net_bytes, on.net_bytes);

  // A disabled registry passed in explicitly also stays exactly empty.
  MetricsRegistry disabled;
  disabled.Disable();
  disabled.Add(0, "x", "y");
  EXPECT_TRUE(disabled.empty());
}

TEST(EngineObservabilityTest, StatsExportMirrorsCounters) {
  TracedRun run = RunTraced(/*seed=*/3, /*lossy=*/false,
                            /*with_observers=*/true);
  MetricsRegistry reg;
  run.engine_stats.ExportTo(&reg);
  EXPECT_EQ(reg.CounterTotal("engine", "tuples_injected"),
            run.engine_stats.tuples_injected);
  EXPECT_EQ(reg.CounterTotal("engine", "join_passes"),
            run.engine_stats.join_passes);
  EXPECT_EQ(reg.CounterTotal("engine", "replicas_stored"),
            run.engine_stats.replicas_stored);
  // Null / disabled registries are no-ops.
  run.engine_stats.ExportTo(nullptr);
  MetricsRegistry off;
  off.Disable();
  run.engine_stats.ExportTo(&off);
  EXPECT_TRUE(off.empty());
}

}  // namespace
}  // namespace deduce
