#include "deduce/datalog/analysis.h"

#include <gtest/gtest.h>

#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

ProgramAnalysis Analyze(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  Program p = std::move(program).value();
  BuiltinRegistry registry = BuiltinRegistry::Default();
  Status st = ResolveBuiltins(&p, registry);
  EXPECT_TRUE(st.ok()) << st;
  auto analysis = AnalyzeProgram(p);
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  return std::move(analysis).value();
}

TEST(StageExprTest, CanonicalForms) {
  StageExpr c = CanonStageExpr(ParseTerm("5").value());
  EXPECT_TRUE(c.valid);
  EXPECT_TRUE(c.is_const);
  EXPECT_EQ(c.konst, 5);

  StageExpr v = CanonStageExpr(ParseTerm("D").value());
  EXPECT_TRUE(v.valid);
  EXPECT_FALSE(v.is_const);
  EXPECT_EQ(v.var, Intern("D"));
  EXPECT_EQ(v.offset, 0);

  StageExpr p = CanonStageExpr(ParseTerm("D + 2").value());
  EXPECT_TRUE(p.valid);
  EXPECT_EQ(p.offset, 2);

  StageExpr m = CanonStageExpr(ParseTerm("D - 1").value());
  EXPECT_TRUE(m.valid);
  EXPECT_EQ(m.offset, -1);

  StageExpr r = CanonStageExpr(ParseTerm("3 + D").value());
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.offset, 3);

  EXPECT_FALSE(CanonStageExpr(ParseTerm("D * 2").value()).valid);
  EXPECT_FALSE(CanonStageExpr(ParseTerm("f(D)").value()).valid);
  EXPECT_FALSE(CanonStageExpr(ParseTerm("D + E").value()).valid);
}

TEST(AnalysisTest, NonRecursiveProgram) {
  ProgramAnalysis a = Analyze(R"(
    cov(L, T) :- veh("enemy", L, T), veh("friendly", L2, T),
                 dist(L, L2) <= 5.
    uncov(L, T) :- veh("enemy", L, T), NOT cov(L, T).
  )");
  EXPECT_FALSE(a.is_recursive);
  EXPECT_TRUE(a.is_stratified);
  EXPECT_TRUE(a.has_negation);
  EXPECT_TRUE(a.edb.count(Intern("veh")));
  EXPECT_TRUE(a.idb.count(Intern("cov")));
  EXPECT_TRUE(a.idb.count(Intern("uncov")));
  // Strata: veh=0, cov=0, uncov=1 (negation on cov).
  EXPECT_EQ(a.stratum_of.at(Intern("veh")), 0);
  EXPECT_EQ(a.stratum_of.at(Intern("cov")), 0);
  EXPECT_EQ(a.stratum_of.at(Intern("uncov")), 1);
}

TEST(AnalysisTest, BuiltinResolution) {
  auto program = ParseProgram(R"(
    near(X) :- p(X, L1), q(L2), dist(L1, L2) <= 2, member(X, [1, 2, 3]).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  Program p = std::move(program).value();
  BuiltinRegistry registry = BuiltinRegistry::Default();
  ASSERT_TRUE(ResolveBuiltins(&p, registry).ok());
  // member(...) became a builtin literal; dist stayed inside a comparison.
  const Rule& rule = p.rules()[0];
  EXPECT_EQ(rule.body[3].kind, Literal::Kind::kBuiltin);
}

TEST(AnalysisTest, NegatedBuiltin) {
  auto program = ParseProgram("a(X) :- b(X, L), NOT member(X, L).");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  BuiltinRegistry registry = BuiltinRegistry::Default();
  ASSERT_TRUE(ResolveBuiltins(&p, registry).ok());
  EXPECT_EQ(p.rules()[0].body[1].kind, Literal::Kind::kBuiltin);
  EXPECT_TRUE(p.rules()[0].body[1].builtin_negated);
}

TEST(AnalysisTest, TransitiveClosureIsRecursiveStratified) {
  ProgramAnalysis a = Analyze(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  EXPECT_TRUE(a.is_recursive);
  EXPECT_TRUE(a.is_stratified);
  EXPECT_TRUE(a.IsRecursivePred(Intern("path")));
  EXPECT_FALSE(a.IsRecursivePred(Intern("edge")));
}

TEST(AnalysisTest, MutualRecursionOneScc) {
  ProgramAnalysis a = Analyze(R"(
    even(X) :- zero(X).
    even(X) :- odd(Y), succ(Y, X).
    odd(X) :- even(Y), succ(Y, X).
  )");
  EXPECT_EQ(a.scc_of.at(Intern("even")), a.scc_of.at(Intern("odd")));
  EXPECT_TRUE(a.is_recursive);
}

TEST(AnalysisTest, SccTopologicalOrder) {
  ProgramAnalysis a = Analyze(R"(
    b(X) :- a(X).
    c(X) :- b(X).
  )");
  int sa = a.scc_of.at(Intern("a"));
  int sb = a.scc_of.at(Intern("b"));
  int sc = a.scc_of.at(Intern("c"));
  EXPECT_LT(sa, sb);
  EXPECT_LT(sb, sc);
}

TEST(AnalysisTest, LogicHIsXYStratified) {
  ProgramAnalysis a = Analyze(R"(
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
  )");
  EXPECT_FALSE(a.is_stratified);
  EXPECT_TRUE(a.is_xy_stratified) << a.ToString();
  // Find the recursive SCC.
  const SccInfo* scc = nullptr;
  for (const SccInfo& s : a.sccs) {
    if (s.recursive) scc = &s;
  }
  ASSERT_NE(scc, nullptr);
  EXPECT_TRUE(scc->has_internal_negation);
  EXPECT_TRUE(scc->xy_stratified) << scc->xy_diagnostic;
  // Stage arguments: h's third, h1's second.
  EXPECT_EQ(scc->stage_arg.at(Intern("h")), 2u);
  EXPECT_EQ(scc->stage_arg.at(Intern("h1")), 1u);
  // h1 must evaluate before h within a stage.
  EXPECT_LT(scc->local_stratum.at(Intern("h1")),
            scc->local_stratum.at(Intern("h")));
}

TEST(AnalysisTest, LogicJIsXYStratified) {
  // The improved SPT program (§VI): j(Y, D) without the edge argument.
  ProgramAnalysis a = Analyze(R"(
    j(0, 0).
    j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
  )");
  EXPECT_TRUE(a.is_xy_stratified) << a.ToString();
}

TEST(AnalysisTest, UnstratifiedRecursionThroughNegationFailsXY) {
  // win(X) :- move(X, Y), NOT win(Y): same-stage negative self-loop with no
  // usable stage argument.
  ProgramAnalysis a = Analyze(R"(
    win(X) :- move(X, Y), NOT win(Y).
  )");
  EXPECT_FALSE(a.is_stratified);
  EXPECT_FALSE(a.is_xy_stratified);
}

TEST(AnalysisTest, StageDeclOverridesInference) {
  ProgramAnalysis a = Analyze(R"(
    .decl h(x, y, d) stage d.
    .decl h1(y, d) stage d.
    h(0, X, 1) :- g(0, X).
    h1(Y, D + 1) :- h(_, Y, D2), (D + 1) > D2, h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), NOT h1(Y, D + 1).
  )");
  EXPECT_TRUE(a.is_xy_stratified) << a.ToString();
}

TEST(AnalysisTest, InputDeclaredPredicateCannotBeDerived) {
  auto program = ParseProgram(R"(
    .decl a(x) input.
    a(X) :- b(X).
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  auto analysis = AnalyzeProgram(p);
  EXPECT_FALSE(analysis.ok());
}

TEST(AnalysisTest, ArityMismatchDetected) {
  auto program = ParseProgram(R"(
    a(X) :- b(X).
    c(X) :- b(X, X).
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  auto analysis = AnalyzeProgram(p);
  EXPECT_FALSE(analysis.ok());
}

TEST(AnalysisTest, TrajectoriesProgramIsStratified) {
  // Example 2: recursion on traj is positive; negation is on lower strata.
  ProgramAnalysis a = Analyze(R"(
    notstartreport(R2) :- report(R1), report(R2), close(R1, R2).
    notlastreport(R1) :- report(R1), report(R2), close(R1, R2).
    traj([R1, R2]) :- report(R1), report(R2), close(R1, R2),
                      NOT notstartreport(R1).
    traj([R2, X | R1]) :- traj([X | R1]), report(R2), close(X, R2).
    completetraj([X | R]) :- traj([X | R]), NOT notlastreport(X).
  )");
  EXPECT_TRUE(a.is_stratified);
  EXPECT_TRUE(a.is_recursive);
  EXPECT_TRUE(a.IsRecursivePred(Intern("traj")));
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

ProgramAnalysis Analyze2(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  Program p = std::move(program).value();
  BuiltinRegistry registry = BuiltinRegistry::Default();
  EXPECT_TRUE(ResolveBuiltins(&p, registry).ok());
  auto analysis = AnalyzeProgram(p);
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  return std::move(analysis).value();
}

TEST(AnalysisTest, WrongStageDeclBreaksXY) {
  // Forcing the stage onto a non-stage argument must fail the XY check.
  ProgramAnalysis a = Analyze2(R"(
    .decl j(y, d) stage y.
    .decl j1(y, d) stage y.
    j1(Y, D + 1) :- j(Y, D2), (D + 1) > D2, j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), NOT j1(Y, D + 1).
  )");
  EXPECT_FALSE(a.is_xy_stratified);
}

TEST(AnalysisTest, XYInferenceOnWiderPredicates) {
  // Four-argument predicate: inference must find the stage among them.
  ProgramAnalysis a = Analyze2(R"(
    w(A, B, 0, C) :- seed(A, B, C).
    w1(Y, D + 1) :- w(_, Y, D2, _), (D + 1) > D2, w(_, X, D, _), g(X, Y).
    w(X, Y, D + 1, X) :- g(X, Y), w(_, X, D, _), NOT w1(Y, D + 1).
  )");
  EXPECT_TRUE(a.is_xy_stratified) << a.ToString();
  const SccInfo* scc = nullptr;
  for (const SccInfo& s : a.sccs) {
    if (s.recursive) scc = &s;
  }
  ASSERT_NE(scc, nullptr);
  EXPECT_EQ(scc->stage_arg.at(Intern("w")), 2u);
}

TEST(AnalysisTest, MutualRecursionThroughNegationFailsXYWithoutStages) {
  ProgramAnalysis a = Analyze2(R"(
    p(X) :- base(X), NOT q(X).
    q(X) :- base(X), NOT p(X).
  )");
  EXPECT_FALSE(a.is_stratified);
  EXPECT_FALSE(a.is_xy_stratified);
}

TEST(AnalysisTest, NegationBetweenStrataStaysStratified) {
  ProgramAnalysis a = Analyze2(R"(
    l1(X) :- base(X).
    l2(X) :- l1(X), NOT skip(X).
    l3(X) :- l2(X), NOT l1m(X).
    l1m(X) :- l1(X), marked(X).
  )");
  EXPECT_TRUE(a.is_stratified);
  // l2 and l3 both sit one negation above stratum-0 predicates.
  EXPECT_EQ(a.stratum_of.at(Intern("l2")), 1);
  EXPECT_EQ(a.stratum_of.at(Intern("l3")), 1);
  EXPECT_EQ(a.stratum_of.at(Intern("l1m")), 0);
}

}  // namespace
}  // namespace deduce
