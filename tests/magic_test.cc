#include "deduce/eval/magic.h"

#include <gtest/gtest.h>

#include <set>

#include "deduce/datalog/parser.h"
#include "deduce/eval/rule_eval.h"
#include "deduce/eval/seminaive.h"

namespace deduce {
namespace {

Program Parse(const std::string& text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

Atom Goal(const std::string& pred, std::vector<Term> args) {
  return Atom(Intern(pred), std::move(args));
}

/// Answers by brute force: full evaluation + filtering.
std::set<std::string> BruteForce(const Program& program, const Atom& goal,
                                 const std::vector<Fact>& input) {
  auto db = EvaluateProgram(program, input);
  EXPECT_TRUE(db.ok()) << db.status();
  std::set<std::string> out;
  BuiltinRegistry registry = BuiltinRegistry::Default();
  for (const Fact& f : db->Relation(goal.predicate)) {
    Subst subst;
    if (SolveMatchTerms(goal.args, f.args(), &subst, registry)) {
      out.insert(f.ToString());
    }
  }
  return out;
}

std::set<std::string> Magic(const Program& program, const Atom& goal,
                            const std::vector<Fact>& input) {
  auto answers = MagicEvaluate(program, goal, input);
  EXPECT_TRUE(answers.ok()) << answers.status();
  std::set<std::string> out;
  for (const Fact& f : *answers) out.insert(f.ToString());
  return out;
}

constexpr char kAncestor[] = R"(
  anc(X, Y) :- par(X, Y).
  anc(X, Z) :- par(X, Y), anc(Y, Z).
)";

std::vector<Fact> ChainParents(int n) {
  std::vector<Fact> out;
  for (int i = 0; i + 1 < n; ++i) {
    out.emplace_back(Intern("par"),
                     std::vector<Term>{Term::Int(i), Term::Int(i + 1)});
  }
  // A second, disconnected chain that a goal-directed evaluation should
  // never touch.
  for (int i = 100; i < 100 + n; ++i) {
    out.emplace_back(Intern("par"),
                     std::vector<Term>{Term::Int(i), Term::Int(i + 1)});
  }
  return out;
}

TEST(MagicTest, BoundFirstArgumentAnswersMatch) {
  Program program = Parse(kAncestor);
  Atom goal = Goal("anc", {Term::Int(0), Term::Var("X")});
  std::vector<Fact> input = ChainParents(10);
  EXPECT_EQ(Magic(program, goal, input), BruteForce(program, goal, input));
}

TEST(MagicTest, FullyBoundGoal) {
  Program program = Parse(kAncestor);
  std::vector<Fact> input = ChainParents(10);
  Atom yes = Goal("anc", {Term::Int(2), Term::Int(7)});
  Atom no = Goal("anc", {Term::Int(7), Term::Int(2)});
  EXPECT_EQ(Magic(program, yes, input).size(), 1u);
  EXPECT_TRUE(Magic(program, no, input).empty());
}

TEST(MagicTest, FreeGoalDegeneratesToFullEvaluation) {
  Program program = Parse(kAncestor);
  Atom goal = Goal("anc", {Term::Var("X"), Term::Var("Y")});
  std::vector<Fact> input = ChainParents(6);
  EXPECT_EQ(Magic(program, goal, input), BruteForce(program, goal, input));
}

TEST(MagicTest, DerivesFewerFactsThanFullEvaluation) {
  Program program = Parse(kAncestor);
  std::vector<Fact> input = ChainParents(20);
  Atom goal = Goal("anc", {Term::Int(15), Term::Var("X")});

  auto magic = MagicTransform(program, goal);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EvalStats magic_stats;
  auto magic_db = EvaluateProgram(magic->program, input, {}, &magic_stats);
  ASSERT_TRUE(magic_db.ok());

  EvalStats full_stats;
  auto full_db = EvaluateProgram(program, input, {}, &full_stats);
  ASSERT_TRUE(full_db.ok());

  // Goal-directed evaluation derives a small suffix of one chain; full
  // evaluation derives the quadratic closure of both chains.
  EXPECT_LT(magic_stats.facts_derived * 5, full_stats.facts_derived)
      << "magic: " << magic_stats.facts_derived
      << " full: " << full_stats.facts_derived;
}

TEST(MagicTest, NonRecursiveJoinQuery) {
  Program program = Parse(R"(
    grand(X, Z) :- par(X, Y), par(Y, Z).
  )");
  std::vector<Fact> input = ChainParents(8);
  Atom goal = Goal("grand", {Term::Int(3), Term::Var("Z")});
  EXPECT_EQ(Magic(program, goal, input), BruteForce(program, goal, input));
  EXPECT_EQ(Magic(program, goal, input).size(), 1u);
}

TEST(MagicTest, SameGenerationBoundBound) {
  Program program = Parse(R"(
    sg(X, X) :- person(X).
    sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
  )");
  std::vector<Fact> input;
  for (int i = 1; i <= 7; ++i) {
    input.emplace_back(Intern("person"), std::vector<Term>{Term::Int(i)});
  }
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 3}, {2, 3}, {4, 5}, {6, 5}, {3, 7}, {5, 7}}) {
    input.emplace_back(Intern("par"),
                       std::vector<Term>{Term::Int(a), Term::Int(b)});
  }
  Atom goal = Goal("sg", {Term::Int(1), Term::Var("Y")});
  EXPECT_EQ(Magic(program, goal, input), BruteForce(program, goal, input));
}

TEST(MagicTest, ProgramFactsOfDerivedPredicatesSurvive) {
  Program program = Parse(R"(
    anc(0, 99).
    anc(X, Y) :- par(X, Y).
    anc(X, Z) :- par(X, Y), anc(Y, Z).
  )");
  std::vector<Fact> input = ChainParents(5);
  Atom goal = Goal("anc", {Term::Int(0), Term::Var("X")});
  std::set<std::string> answers = Magic(program, goal, input);
  EXPECT_TRUE(answers.count("anc(0, 99)")) << "seed fact lost";
  EXPECT_EQ(answers, BruteForce(program, goal, input));
}

TEST(MagicTest, ComparisonsCarriedThrough) {
  Program program = Parse(R"(
    big(X, Y) :- par(X, Y), Y > 3.
    bigchain(X, Z) :- big(X, Y), big(Y, Z).
  )");
  std::vector<Fact> input = ChainParents(10);
  Atom goal = Goal("bigchain", {Term::Int(4), Term::Var("Z")});
  EXPECT_EQ(Magic(program, goal, input), BruteForce(program, goal, input));
}

TEST(MagicTest, NegationRejected) {
  Program program = Parse(R"(
    a(X) :- b(X), NOT c(X).
  )");
  auto magic = MagicTransform(program, Goal("a", {Term::Int(1)}));
  EXPECT_EQ(magic.status().code(), StatusCode::kUnimplemented);
}

TEST(MagicTest, NonDerivedGoalRejected) {
  Program program = Parse(kAncestor);
  auto magic = MagicTransform(program, Goal("par", {Term::Int(1),
                                                    Term::Var("X")}));
  EXPECT_EQ(magic.status().code(), StatusCode::kInvalidArgument);
}

TEST(MagicTest, TransformedProgramIsPrintable) {
  Program program = Parse(kAncestor);
  auto magic =
      MagicTransform(program, Goal("anc", {Term::Int(0), Term::Var("X")}));
  ASSERT_TRUE(magic.ok());
  // The transformed program re-parses (round-trip sanity).
  std::string text = magic->program.ToString();
  auto reparsed = ParseProgram(text);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
}

}  // namespace
}  // namespace deduce
