#include "deduce/datalog/unify.h"

#include <gtest/gtest.h>

#include "deduce/datalog/parser.h"

namespace deduce {
namespace {

Term T(const std::string& text) {
  auto t = ParseTerm(text);
  EXPECT_TRUE(t.ok()) << t.status();
  return t.value();
}

TEST(SubstTest, BindAndLookup) {
  Subst s;
  EXPECT_TRUE(s.Bind(Intern("X"), Term::Int(1)));
  EXPECT_TRUE(s.Bind(Intern("X"), Term::Int(1)));   // idempotent
  EXPECT_FALSE(s.Bind(Intern("X"), Term::Int(2)));  // conflict
  ASSERT_NE(s.Lookup(Intern("X")), nullptr);
  EXPECT_EQ(*s.Lookup(Intern("X")), Term::Int(1));
  EXPECT_EQ(s.Lookup(Intern("Y")), nullptr);
}

TEST(SubstTest, ApplyRecurses) {
  Subst s;
  s.Bind(Intern("X"), Term::Int(3));
  Term t = T("f(X, g(X), Y)");
  EXPECT_EQ(s.Apply(t), T("f(3, g(3), Y)"));
}

TEST(SubstTest, ApplyChasesVariableChains) {
  Subst s;
  s.Bind(Intern("X"), Term::Var("Y"));
  s.Bind(Intern("Y"), Term::Int(9));
  EXPECT_EQ(s.Apply(Term::Var("X")), Term::Int(9));
}

TEST(SubstTest, ToStringIsSorted) {
  Subst s;
  s.Bind(Intern("B"), Term::Int(2));
  s.Bind(Intern("A"), Term::Int(1));
  EXPECT_EQ(s.ToString(), "{A=1, B=2}");
}

TEST(MatchTest, ConstantMatchesItself) {
  Subst s;
  EXPECT_TRUE(MatchTerm(Term::Int(5), Term::Int(5), &s));
  EXPECT_FALSE(MatchTerm(Term::Int(5), Term::Int(6), &s));
}

TEST(MatchTest, VariableBinds) {
  Subst s;
  EXPECT_TRUE(MatchTerm(Term::Var("X"), T("f(1, 2)"), &s));
  EXPECT_EQ(*s.Lookup(Intern("X")), T("f(1, 2)"));
}

TEST(MatchTest, RepeatedVariableMustAgree) {
  Subst s;
  EXPECT_TRUE(MatchTerms({Term::Var("X"), Term::Var("X")},
                         {Term::Int(1), Term::Int(1)}, &s));
  Subst s2;
  EXPECT_FALSE(MatchTerms({Term::Var("X"), Term::Var("X")},
                          {Term::Int(1), Term::Int(2)}, &s2));
}

TEST(MatchTest, FunctionStructure) {
  Subst s;
  EXPECT_TRUE(MatchTerm(T("f(X, g(Y))"), T("f(1, g(2))"), &s));
  EXPECT_EQ(*s.Lookup(Intern("X")), Term::Int(1));
  EXPECT_EQ(*s.Lookup(Intern("Y")), Term::Int(2));
  Subst s2;
  EXPECT_FALSE(MatchTerm(T("f(X, g(Y))"), T("f(1, h(2))"), &s2));
}

TEST(MatchTest, ListPatternHeadTail) {
  // [X | R] against [1, 2, 3] gives X=1, R=[2, 3].
  Subst s;
  Term pattern = T("[X | R]");
  Term ground = T("[1, 2, 3]");
  ASSERT_TRUE(MatchTerm(pattern, ground, &s));
  EXPECT_EQ(*s.Lookup(Intern("X")), Term::Int(1));
  EXPECT_EQ(*s.Lookup(Intern("R")), T("[2, 3]"));
}

TEST(UnifyTest, SymmetricBinding) {
  Subst s;
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Int(1), &s));
  Subst s2;
  EXPECT_TRUE(Unify(Term::Int(1), Term::Var("X"), &s2));
  EXPECT_EQ(*s2.Lookup(Intern("X")), Term::Int(1));
}

TEST(UnifyTest, VariableToVariable) {
  Subst s;
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Var("Y"), &s));
  EXPECT_TRUE(Unify(Term::Var("X"), Term::Int(1), &s));
  EXPECT_EQ(s.Apply(Term::Var("Y")), Term::Int(1));
}

TEST(UnifyTest, OccursCheck) {
  Subst s;
  EXPECT_FALSE(Unify(Term::Var("X"), T("f(X)"), &s));
}

TEST(UnifyTest, DeepUnification) {
  Subst s;
  EXPECT_TRUE(Unify(T("f(X, g(X, 2))"), T("f(1, g(Y, Z))"), &s));
  EXPECT_EQ(s.Apply(Term::Var("Y")), Term::Int(1));
  EXPECT_EQ(s.Apply(Term::Var("Z")), Term::Int(2));
}

TEST(UnifyTest, FunctorMismatch) {
  Subst s;
  EXPECT_FALSE(Unify(T("f(1)"), T("g(1)"), &s));
  Subst s2;
  EXPECT_FALSE(Unify(T("f(1)"), T("f(1, 2)"), &s2));
}

TEST(RenameVariablesTest, AppendsSuffix) {
  Term t = T("f(X, g(Y), 3)");
  Term renamed = RenameVariables(t, "_1");
  EXPECT_EQ(renamed, T("f(X_1, g(Y_1), 3)"));
}

}  // namespace
}  // namespace deduce
