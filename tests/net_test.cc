#include <gtest/gtest.h>

#include "deduce/net/codec.h"
#include "deduce/net/network.h"
#include "deduce/net/simulator.h"
#include "deduce/net/topology.h"

namespace deduce {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(5, [&] {
    sim.ScheduleAfter(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.now(), 15);
}

// Tie-break regression guard: the documented (time, insertion-order)
// ordering must hold for *many* events at one instant, including events
// scheduled for the current instant while it is being drained — the exact
// contract any replacement event queue has to preserve.
TEST(SimulatorTest, ManySameInstantEventsFireInInsertionOrder) {
  Simulator sim;
  constexpr int kEvents = 500;
  std::vector<int> order;
  // Interleave two instants so same-instant runs are split across other
  // pending work, not just one contiguous burst.
  for (int i = 0; i < kEvents; ++i) {
    sim.ScheduleAt(1'000, [&order, i] { order.push_back(i); });
    sim.ScheduleAt(2'000, [&order, i] { order.push_back(kEvents + i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(2 * kEvents));
  for (int i = 0; i < 2 * kEvents; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.now(), 2'000);
}

TEST(SimulatorTest, EventsScheduledAtNowRunAfterPendingSameInstantOnes) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] {
    order.push_back(0);
    // Scheduled *during* t=100: must run after the already-queued
    // same-instant events 1 and 2 (it has a larger insertion index).
    sim.ScheduleAt(100, [&] { order.push_back(3); });
  });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RunUntilBoundaryIncludesWholeInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAt(5'000, [&order, i] { order.push_back(i); });
  }
  sim.ScheduleAt(5'001, [&] { order.push_back(-1); });
  sim.RunUntil(5'000);  // deadline exactly at the burst instant
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(order.back(), -1);
}

TEST(SimulatorTest, RunMaxEventsSplitsSameInstantBurstDeterministically) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(7, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.pending(), 6u);
  sim.Run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(TopologyTest, GridStructure) {
  Topology t = Topology::Grid(4);
  EXPECT_EQ(t.node_count(), 16);
  EXPECT_TRUE(t.IsConnected());
  // Corner has 2 neighbors; center has 4.
  EXPECT_EQ(t.neighbors(t.GridNode(0, 0)).size(), 2u);
  EXPECT_EQ(t.neighbors(t.GridNode(1, 1)).size(), 4u);
  // No diagonal links (unit radius).
  EXPECT_FALSE(t.AreNeighbors(t.GridNode(0, 0), t.GridNode(1, 1)));
  EXPECT_TRUE(t.AreNeighbors(t.GridNode(0, 0), t.GridNode(1, 0)));
  auto [p, q] = t.GridCoord(t.GridNode(2, 3));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(q, 3);
}

TEST(TopologyTest, GridDiameter) {
  Topology t = Topology::Grid(4);
  EXPECT_EQ(t.DiameterHops(), 6);  // (m-1)*2
}

TEST(TopologyTest, LineTopology) {
  Topology t = Topology::Line(5);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(t.DiameterHops(), 4);
  EXPECT_EQ(t.neighbors(2).size(), 2u);
}

TEST(TopologyTest, RandomGeometricDeterministic) {
  Rng rng1(7);
  Rng rng2(7);
  Topology a = Topology::RandomGeometric(30, 10, 10, 3.0, &rng1);
  Topology b = Topology::RandomGeometric(30, 10, 10, 3.0, &rng2);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(a.location(i).x, b.location(i).x);
    EXPECT_EQ(a.neighbors(i), b.neighbors(i));
  }
}

TEST(TopologyTest, ClosestNode) {
  Topology t = Topology::Grid(3);
  EXPECT_EQ(t.ClosestNode(0.1, 0.1), t.GridNode(0, 0));
  EXPECT_EQ(t.ClosestNode(1.9, 2.2), t.GridNode(2, 2));
}

TEST(CodecTest, VarintsRoundTrip) {
  PayloadWriter w;
  w.WriteUint(0);
  w.WriteUint(127);
  w.WriteUint(128);
  w.WriteUint(UINT64_MAX);
  w.WriteInt(-1);
  w.WriteInt(INT64_MIN);
  PayloadReader r(w.bytes());
  EXPECT_EQ(r.ReadUint().value(), 0u);
  EXPECT_EQ(r.ReadUint().value(), 127u);
  EXPECT_EQ(r.ReadUint().value(), 128u);
  EXPECT_EQ(r.ReadUint().value(), UINT64_MAX);
  EXPECT_EQ(r.ReadInt().value(), -1);
  EXPECT_EQ(r.ReadInt().value(), INT64_MIN);
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TermsRoundTrip) {
  std::vector<Term> terms = {
      Term::Int(42),
      Term::Real(2.5),
      Term::Sym("enemy"),
      Term::Var("X"),
      Term::Function("loc", {Term::Int(3), Term::Int(4)}),
      Term::MakeList({Term::Int(1), Term::Sym("a")}),
      Term::Nil(),
  };
  PayloadWriter w;
  for (const Term& t : terms) w.WriteTerm(t);
  PayloadReader r(w.bytes());
  for (const Term& t : terms) {
    auto got = r.ReadTerm();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, t);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, FactAndTupleIdRoundTrip) {
  Fact f(Intern("veh"), {Term::Sym("enemy"),
                         Term::Function("loc", {Term::Int(1), Term::Int(2)}),
                         Term::Int(10)});
  TupleId id{42, 123456, 7};
  PayloadWriter w;
  w.WriteFact(f);
  w.WriteTupleId(id);
  PayloadReader r(w.bytes());
  auto f2 = r.ReadFact();
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f2, f);
  auto id2 = r.ReadTupleId();
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, id);
}

TEST(CodecTest, TruncationDetected) {
  PayloadWriter w;
  w.WriteFact(Fact(Intern("p"), {Term::Int(1)}));
  std::vector<uint8_t> bytes = w.bytes();
  bytes.pop_back();
  PayloadReader r(bytes);
  EXPECT_FALSE(r.ReadFact().ok());
}

TEST(CodecTest, GarbageRejected) {
  std::vector<uint8_t> bytes = {0xff, 0xff, 0xff, 0x42, 0x99};
  PayloadReader r(bytes);
  EXPECT_FALSE(r.ReadFact().ok());
}

// --- network ---

class PingApp : public NodeApp {
 public:
  explicit PingApp(std::vector<int>* log) : log_(log) {}
  void Start(NodeContext* ctx) override {
    if (ctx->id() == 0) {
      Message m;
      m.type = 1;
      ctx->Send(1, m);
    }
  }
  void OnMessage(NodeContext* ctx, const Message& msg) override {
    log_->push_back(ctx->id());
    if (msg.type == 1 && ctx->id() == 1) {
      Message m;
      m.type = 2;
      ctx->Send(0, m);
    }
  }

 private:
  std::vector<int>* log_;
};

TEST(NetworkTest, PingPongDelivery) {
  std::vector<int> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<PingApp>(&log));
  net.SetApp(1, std::make_unique<PingApp>(&log));
  net.Start();
  net.sim().Run();
  EXPECT_EQ(log, (std::vector<int>{1, 0}));
  EXPECT_EQ(net.stats().TotalMessages(), 2u);
  EXPECT_GT(net.stats().TotalBytes(), 0u);
}

TEST(NetworkTest, LossDropsMessages) {
  LinkModel link;
  link.loss_rate = 1.0;
  std::vector<int> log;
  Network net(Topology::Line(2), link, 1);
  net.SetApp(0, std::make_unique<PingApp>(&log));
  net.SetApp(1, std::make_unique<PingApp>(&log));
  net.Start();
  net.sim().Run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net.stats().per_node[0].dropped_messages, 1u);
}

TEST(NetworkTest, FailedNodeSilent) {
  std::vector<int> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<PingApp>(&log));
  net.SetApp(1, std::make_unique<PingApp>(&log));
  net.FailNode(1);
  net.Start();
  net.sim().Run();
  EXPECT_TRUE(log.empty());
}

TEST(NetworkTest, ClockSkewBounded) {
  LinkModel link;
  link.max_clock_skew = 5'000;
  Network net(Topology::Grid(3), link, 42);
  for (int i = 0; i < 9; ++i) {
    EXPECT_GE(net.clock_skew(i), 0);
    EXPECT_LE(net.clock_skew(i), 5'000);
  }
}

class TimerApp : public NodeApp {
 public:
  explicit TimerApp(std::vector<std::pair<int, SimTime>>* log) : log_(log) {}
  void Start(NodeContext* ctx) override {
    ctx->SetTimer(100, 7);
    ctx->SetTimer(50, 3);
  }
  void OnMessage(NodeContext*, const Message&) override {}
  void OnTimer(NodeContext* ctx, int timer_id) override {
    log_->push_back({timer_id, ctx->LocalTime()});
  }

 private:
  std::vector<std::pair<int, SimTime>>* log_;
};

TEST(NetworkTest, TimersFireInOrder) {
  std::vector<std::pair<int, SimTime>> log;
  Topology topo = Topology::Line(1);
  // A 1-node line has no links; still fine for timers.
  Network net(topo, LinkModel{}, 1);
  net.SetApp(0, std::make_unique<TimerApp>(&log));
  net.Start();
  net.sim().Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 3);
  EXPECT_EQ(log[1].first, 7);
}

TEST(NetworkTest, DeterministicReplay) {
  auto run = [](uint64_t seed) {
    LinkModel link;
    link.jitter = 3'000;
    link.loss_rate = 0.2;
    std::vector<int> log;
    Network net(Topology::Line(2), link, seed);
    net.SetApp(0, std::make_unique<PingApp>(&log));
    net.SetApp(1, std::make_unique<PingApp>(&log));
    net.Start();
    net.sim().Run();
    return std::make_pair(log, net.stats().TotalBytes());
  };
  EXPECT_EQ(run(123), run(123));
}

}  // namespace
}  // namespace deduce

namespace deduce {
namespace {

TEST(NetworkTest, TraceSinkSeesEveryTransmission) {
  std::vector<int> log;
  std::vector<TraceEvent> trace;
  Network net(Topology::Line(3), LinkModel{}, 1);
  net.SetTraceSink([&](const TraceEvent& ev) { trace.push_back(ev); });
  net.SetApp(0, std::make_unique<PingApp>(&log));
  net.SetApp(1, std::make_unique<PingApp>(&log));
  net.SetApp(2, std::make_unique<PingApp>(&log));
  net.Start();
  net.sim().Run();
  // Ping 0->1 and pong 1->0.
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].src, 0);
  EXPECT_EQ(trace[0].dst, 1);
  EXPECT_TRUE(trace[0].delivered);
  EXPECT_EQ(trace[1].src, 1);
  EXPECT_EQ(trace[1].dst, 0);
  uint64_t traced_bytes = 0;
  for (const TraceEvent& ev : trace) {
    traced_bytes += ev.bytes * static_cast<uint64_t>(ev.attempts);
  }
  EXPECT_EQ(traced_bytes, net.stats().TotalBytes());
}

TEST(NetworkTest, RetriesRecoverLossAndAreCounted) {
  LinkModel link;
  link.loss_rate = 0.45;
  link.retries = 6;  // effective loss ~0.45^7 ~ 0.4%
  std::vector<int> log;
  int delivered = 0;
  int attempts_total = 0;
  Network net(Topology::Line(2), link, 97);
  net.SetTraceSink([&](const TraceEvent& ev) {
    attempts_total += ev.attempts;
    delivered += ev.delivered ? 1 : 0;
  });
  net.SetApp(0, std::make_unique<PingApp>(&log));
  net.SetApp(1, std::make_unique<PingApp>(&log));
  net.Start();
  net.sim().Run();
  // The ping (and pong) almost surely survive with 6 retries.
  EXPECT_EQ(log.size(), 2u);
  EXPECT_GE(attempts_total, delivered);  // retries really happened or not
  // Stats count every attempt as a sent message.
  EXPECT_EQ(net.stats().TotalMessages(),
            static_cast<uint64_t>(attempts_total));
}

// --- fault injection: recovery, churn, incarnations ---

/// Echoes every received message back to its sender; records MAC acks of
/// sends triggered via Poke().
class EchoApp : public NodeApp {
 public:
  explicit EchoApp(std::vector<int>* log) : log_(log) {}
  void OnMessage(NodeContext* ctx, const Message& msg) override {
    log_->push_back(ctx->id());
    if (msg.type == 1) {
      Message m;
      m.type = 2;
      ctx->Send(msg.src, m);
    }
  }
  void OnRestart(NodeContext*) override { ++restarts; }

  static void Poke(NodeContext* ctx, NodeId to,
                   std::vector<bool>* acks) {
    Message m;
    m.type = 1;
    acks->push_back(ctx->Send(to, m));
  }

  int restarts = 0;

 private:
  std::vector<int>* log_;
};

TEST(NetworkTest, RecoveredNodeResumesReceiving) {
  std::vector<int> log;
  std::vector<bool> acks;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<EchoApp>(&log));
  net.SetApp(1, std::make_unique<EchoApp>(&log));
  net.Start();

  net.FailNode(1);
  net.sim().ScheduleAt(1'000, [&] { EchoApp::Poke(&net.context(0), 1, &acks); });
  net.sim().ScheduleAt(50'000, [&] { net.RecoverNode(1); });
  net.sim().ScheduleAt(60'000, [&] { EchoApp::Poke(&net.context(0), 1, &acks); });
  net.sim().Run();

  // First poke hit a dead node: no MAC ack, no delivery. Second one works.
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_FALSE(acks[0]);
  EXPECT_TRUE(acks[1]);
  EXPECT_EQ(log, (std::vector<int>{1, 0}));
  EXPECT_EQ(net.stats().nodes_failed, 1u);
  EXPECT_EQ(net.stats().nodes_recovered, 1u);
  EXPECT_EQ(net.stats().mac_ack_failures, 1u);
  EXPECT_EQ(static_cast<EchoApp*>(net.app(1))->restarts, 1);
}

TEST(NetworkTest, CrashClearsPendingTimersAcrossIncarnations) {
  std::vector<std::pair<int, SimTime>> log;
  Network net(Topology::Line(1), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<TimerApp>(&log));  // timers at 50 and 100
  net.Start();
  EXPECT_EQ(net.incarnation(0), 0u);
  net.sim().ScheduleAt(60, [&] { net.FailNode(0); });
  net.sim().ScheduleAt(70, [&] { net.RecoverNode(0); });
  net.sim().Run();
  // The 50-timer fired; the 100-timer belonged to the dead incarnation.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 3);
  EXPECT_EQ(net.incarnation(0), 1u);
}

TEST(NetworkTest, FaultPlanChurnSchedule) {
  FaultPlan plan = FaultPlan::Churn({4, 7}, /*first_fail=*/100,
                                    /*downtime=*/50, /*stagger=*/200);
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].node, 4);
  EXPECT_EQ(plan.events[0].time, 100);
  EXPECT_EQ(plan.events[1].node, 4);
  EXPECT_EQ(plan.events[1].time, 150);
  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::kRecover);
  EXPECT_EQ(plan.events[2].node, 7);
  EXPECT_EQ(plan.events[2].time, 300);

  // downtime < 0: fail forever, no recover events.
  FaultPlan forever = FaultPlan::Churn({4, 7}, 100, -1, 200);
  EXPECT_EQ(forever.events.size(), 2u);
}

TEST(NetworkTest, AppliedFaultPlanDrivesFailures) {
  std::vector<int> log;
  std::vector<bool> acks;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<EchoApp>(&log));
  net.SetApp(1, std::make_unique<EchoApp>(&log));
  FaultPlan plan;
  plan.Fail(10'000, 1).Recover(30'000, 1);
  net.ApplyFaultPlan(plan);
  net.Start();
  net.sim().ScheduleAt(15'000, [&] { EXPECT_TRUE(net.IsFailed(1)); });
  net.sim().ScheduleAt(40'000, [&] { EXPECT_FALSE(net.IsFailed(1)); });
  net.sim().Run();
  EXPECT_EQ(net.stats().nodes_failed, 1u);
  EXPECT_EQ(net.stats().nodes_recovered, 1u);
}

}  // namespace
}  // namespace deduce
