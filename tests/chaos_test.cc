// Chaos-harness tests: link-fault semantics (asymmetric cuts, healing,
// corruption, duplication), scenario serialization round trips, run
// determinism, invariant checking, and greedy schedule shrinking.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "deduce/datalog/parser.h"
#include "deduce/engine/engine.h"
#include "deduce/engine/invariants.h"
#include "deduce/engine/scenario.h"
#include "deduce/net/network.h"

namespace deduce {
namespace {

/// Records every delivered payload per receiving node; each node sends one
/// message to each neighbor when its `send` timer fires.
class ProbeApp : public NodeApp {
 public:
  ProbeApp(std::vector<std::pair<NodeId, std::vector<uint8_t>>>* log,
           std::vector<SimTime> send_times)
      : log_(log), send_times_(std::move(send_times)) {}

  void Start(NodeContext* ctx) override {
    for (size_t i = 0; i < send_times_.size(); ++i) {
      ctx->SetTimer(send_times_[i], static_cast<int>(i));
    }
  }
  void OnTimer(NodeContext* ctx, int) override {
    for (NodeId peer : ctx->neighbors()) {
      Message m;
      m.type = 42;
      m.payload = {0x11, 0x22, 0x33, 0x44};
      ctx->Send(peer, m);
    }
  }
  void OnMessage(NodeContext* ctx, const Message& msg) override {
    log_->push_back({ctx->id(), msg.payload});
  }

 private:
  std::vector<std::pair<NodeId, std::vector<uint8_t>>>* log_;
  std::vector<SimTime> send_times_;
};

size_t CountReceived(
    const std::vector<std::pair<NodeId, std::vector<uint8_t>>>& log,
    NodeId node) {
  size_t n = 0;
  for (const auto& entry : log) {
    if (entry.first == node) ++n;
  }
  return n;
}

TEST(LinkFaultTest, CutLinksIsAsymmetric) {
  std::vector<std::pair<NodeId, std::vector<uint8_t>>> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{10}));
  net.SetApp(1, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{10}));
  LinkFaultRule rule;
  rule.kind = LinkFaultRule::Kind::kCut;
  rule.src = {0};
  rule.dst = {1};
  net.AddLinkFault(rule);
  net.Start();
  net.sim().Run();
  // 0 -> 1 suppressed, 1 -> 0 unaffected.
  EXPECT_EQ(CountReceived(log, 1), 0u);
  EXPECT_EQ(CountReceived(log, 0), 1u);
  EXPECT_GE(net.stats().links_cut, 1u);
}

TEST(LinkFaultTest, HealLinksRestoresDelivery) {
  std::vector<std::pair<NodeId, std::vector<uint8_t>>> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  // Node 0 sends at t=10 (while cut) and t=200000 (after heal).
  net.SetApp(0, std::make_unique<ProbeApp>(
                    &log, std::vector<SimTime>{10, 200000}));
  net.SetApp(1, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{}));
  FaultPlan plan;
  plan.CutLinks(0, {0}, {1}).HealLinks(100000, {0}, {1});
  net.ApplyFaultPlan(plan);
  net.Start();
  net.sim().Run();
  // The first send is suppressed, the post-heal send arrives.
  EXPECT_EQ(CountReceived(log, 1), 1u);
  EXPECT_EQ(net.stats().links_cut, 1u);
}

TEST(LinkFaultTest, CorruptionFlipsPayloadBytes) {
  std::vector<std::pair<NodeId, std::vector<uint8_t>>> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{10}));
  net.SetApp(1, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{}));
  LinkFaultRule rule;
  rule.kind = LinkFaultRule::Kind::kCorrupt;
  rule.rate = 1.0;
  net.AddLinkFault(rule);
  net.Start();
  net.sim().Run();
  ASSERT_EQ(CountReceived(log, 1), 1u);
  const std::vector<uint8_t> sent = {0x11, 0x22, 0x33, 0x44};
  EXPECT_NE(log[0].second, sent);  // Delivered, but damaged.
  EXPECT_EQ(log[0].second.size(), sent.size());
  EXPECT_EQ(net.stats().corrupted_delivered, 1u);
}

TEST(LinkFaultTest, DuplicationDeliversTwice) {
  std::vector<std::pair<NodeId, std::vector<uint8_t>>> log;
  Network net(Topology::Line(2), LinkModel{}, 1);
  net.SetApp(0, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{10}));
  net.SetApp(1, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{}));
  LinkFaultRule rule;
  rule.kind = LinkFaultRule::Kind::kDuplicate;
  rule.rate = 1.0;
  net.AddLinkFault(rule);
  net.Start();
  net.sim().Run();
  EXPECT_EQ(CountReceived(log, 1), 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(LinkFaultTest, NoFaultRulesMeansNoExtraRngDraws) {
  // Two identical runs, one with a never-matching rule installed and then
  // healed before Start: the delivery schedule must stay bit-identical
  // (fault checks draw no RNG when the rule list is empty).
  auto run = [](bool install_and_heal) {
    std::vector<std::pair<NodeId, std::vector<uint8_t>>> log;
    LinkModel link;
    link.loss_rate = 0.2;
    link.retries = 2;
    Network net(Topology::Line(2), link, 99);
    net.SetApp(0, std::make_unique<ProbeApp>(
                      &log, std::vector<SimTime>{10, 20, 30, 40}));
    net.SetApp(1, std::make_unique<ProbeApp>(&log, std::vector<SimTime>{}));
    if (install_and_heal) {
      LinkFaultRule rule;
      rule.kind = LinkFaultRule::Kind::kCut;
      rule.src = {1};
      rule.dst = {0};
      net.AddLinkFault(rule);
      net.HealLinks({1}, {0});
    }
    net.Start();
    net.sim().Run();
    return log;
  };
  EXPECT_EQ(run(false), run(true));
}

constexpr char kJoinScenario[] = R"(# deduce chaos scenario v1
seed 11
grid 4
loss 0
retries 0
reliable 1
repair 0
anti_entropy_period 0
checksum 0
rto_jitter 0.1
storage row
[program]
.decl r/3 input.
.decl s/3 input.
t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
[events]
50000 0 + r(1, 0, 1).
60000 5 + s(1, 5, 2).
300000 2 + r(2, 2, 3).
320000 10 + s(2, 10, 4).
350000 6 + r(1, 6, 5).
380000 15 + s(1, 15, 6).
[faults]
[end]
)";

std::vector<std::string> SortedResults(const Database& db) {
  std::vector<std::string> out;
  for (SymbolId pred : db.Predicates()) {
    for (const Fact& f : db.Relation(pred)) out.push_back(f.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ScenarioTest, PartitionThenHealConvergesToFaultFreeResults) {
  auto fault_free = Scenario::FromText(kJoinScenario);
  ASSERT_TRUE(fault_free.ok()) << fault_free.status().ToString();

  Scenario partitioned = *fault_free;
  // Split the 4x4 grid down the middle in both directions mid-run, heal
  // before the end; the reliable transport must finish the job.
  std::vector<NodeId> left = {0, 1, 4, 5, 8, 9, 12, 13};
  std::vector<NodeId> right = {2, 3, 6, 7, 10, 11, 14, 15};
  partitioned.faults.CutLinks(250000, left, right)
      .CutLinks(250000, right, left)
      .HealLinks(600000, left, right)
      .HealLinks(600000, right, left);

  auto base = RunScenario(*fault_free);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto chaos = RunScenario(partitioned);
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();

  EXPECT_TRUE(base->report.ok()) << base->report.ToString();
  EXPECT_TRUE(chaos->report.ok()) << chaos->report.ToString();
  EXPECT_GE(chaos->net.links_cut, 1u);
  // Same final result set as the fault-free run: nothing lost, nothing
  // invented.
  EXPECT_EQ(SortedResults(chaos->results), SortedResults(base->results));
}

TEST(ScenarioTest, TextRoundTripIsIdentity) {
  ChaosProfile profile;
  Scenario sampled = SampleScenario(5, profile);
  std::string text = sampled.ToText();
  auto parsed = Scenario::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToText(), text);
}

TEST(ScenarioTest, SamplingIsDeterministicPerSeed) {
  ChaosProfile profile;
  EXPECT_EQ(SampleScenario(9, profile).ToText(),
            SampleScenario(9, profile).ToText());
  EXPECT_NE(SampleScenario(9, profile).ToText(),
            SampleScenario(10, profile).ToText());
}

TEST(ScenarioTest, UnknownFutureVersionIsRejected) {
  std::string text = kJoinScenario;
  size_t at = text.find("scenario v1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 11, "scenario v4");
  auto parsed = Scenario::FromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unsupported scenario version"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ScenarioTest, UnknownFaultKindIsRejected) {
  std::string text = kJoinScenario;
  size_t at = text.find("[faults]\n");
  ASSERT_NE(at, std::string::npos);
  text.insert(at + 9, "flood 100000 2\n");
  auto parsed = Scenario::FromText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unknown fault kind 'flood'"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(ScenarioTest, OverloadScenarioRoundTripsThroughV2Text) {
  ChaosProfile profile;
  profile.overload = true;
  Scenario sampled = SampleScenario(5, profile);
  std::string text = sampled.ToText();
  EXPECT_NE(text.find("# deduce chaos scenario v2"), std::string::npos);
  EXPECT_NE(text.find("budget 1"), std::string::npos);
  EXPECT_NE(text.find("storm "), std::string::npos);
  auto parsed = Scenario::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToText(), text);
}

TEST(ScenarioTest, SampledOverloadScenariosRunCleanAndShed) {
  // Invariant-checked overload runs: storms past tight budgets must shed
  // without ever reporting a shed-derived result as complete.
  ChaosProfile profile;
  profile.overload = true;
  for (uint64_t seed : {3u, 7u, 19u}) {
    Scenario scenario = SampleScenario(seed, profile);
    auto run = RunScenario(scenario);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->report.ok())
        << "seed " << seed << ": " << run->report.ToString();
    EXPECT_TRUE(run->report.shed_soundness_checked);
    EXPECT_TRUE(run->overload);
  }
}

TEST(ScenarioTest, RunIsDeterministic) {
  auto scenario = Scenario::FromText(kJoinScenario);
  ASSERT_TRUE(scenario.ok());
  auto a = RunScenario(*scenario);
  auto b = RunScenario(*scenario);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Summary(), b->Summary());
}

TEST(InvariantTest, CleanRunPassesAllChecks) {
  auto scenario = Scenario::FromText(kJoinScenario);
  ASSERT_TRUE(scenario.ok());
  auto run = RunScenario(*scenario);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->report.ok()) << run->report.ToString();
  EXPECT_TRUE(run->report.soundness_checked);
  EXPECT_TRUE(run->report.dedup_checked);
}

TEST(InvariantTest, PhantomResultIsFlagged) {
  // An empty oracle makes every derived result a phantom: the soundness
  // check must flag each one.
  auto program = ParseProgram(R"(
    .decl r/3 input.
    .decl s/3 input.
    t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
  )");
  ASSERT_TRUE(program.ok());
  Network net(Topology::Grid(3), LinkModel{}, 1);
  EngineOptions options;
  auto engine = DistributedEngine::Create(&net, *program, options);
  ASSERT_TRUE(engine.ok());
  (void)(*engine)->Inject(0, StreamOp::kInsert,
                          Fact(Intern("r"), {Term::Int(1), Term::Int(0),
                                             Term::Int(1)}));
  (void)(*engine)->Inject(4, StreamOp::kInsert,
                          Fact(Intern("s"), {Term::Int(1), Term::Int(4),
                                             Term::Int(2)}));
  net.sim().Run();
  ASSERT_FALSE((*engine)->ResultDatabase().Predicates().empty());

  Database empty_oracle;
  InvariantOptions inv;
  inv.oracle = &empty_oracle;
  InvariantReport report = CheckInvariants(**engine, inv);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.soundness_checked);
  for (const std::string& v : report.violations) {
    EXPECT_NE(v.find("phantom"), std::string::npos) << v;
  }
}

TEST(ShrinkTest, RemovesIrrelevantEventsAndKeepsViolation) {
  // The committed phantom reproducer, padded with injections and a fault
  // clause that are irrelevant to the violation: shrinking must strip the
  // padding and keep violating.
  constexpr char kPadded[] = R"(# deduce chaos scenario v1
seed 7
grid 4
loss 0
retries 0
reliable 1
repair 0
anti_entropy_period 0
checksum 1
rto_jitter 0.1
storage row
[program]
.decl r/3 input.
.decl s/3 input.
t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
[events]
100000 1 + r(9, 1, 90).
200000 2 + s(8, 2, 91).
1163587 5 + r(3, 5, 24).
1239371 6 + s(3, 6, 25).
1338172 0 + s(3, 0, 26).
1538231 0 - s(3, 0, 26).
2000000 3 + r(7, 3, 92).
[faults]
corrupt 669372 * -> * rate=0.3
delay 100000 * -> * rate=0.1 extra=2000
[end]
)";
  auto padded = Scenario::FromText(kPadded);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  auto before = RunScenario(*padded);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->report.ok()) << "padded scenario must violate";

  auto shrunk = ShrinkScenario(*padded);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_GT(shrunk->removed, 0);
  EXPECT_GT(shrunk->runs, 0);
  EXPECT_LT(shrunk->scenario.events.size(), padded->events.size());

  // The minimal scenario still violates, and re-runs deterministically.
  auto after = RunScenario(shrunk->scenario);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->report.ok());
  auto again = RunScenario(shrunk->scenario);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(after->Summary(), again->Summary());
}

TEST(ShrinkTest, DropsHealsOrphanedByRemovingTheirCut) {
  // A heal only undoes a cut with the exact same src/dst lists; once the
  // cut is gone the heal is a provable no-op. Shrinking must never emit a
  // scenario where a heal survives its partner: pad the reproducer with an
  // orphaned heal (no cut at all) and a cut+heal pair irrelevant to the
  // violation, then check the 1-minimal output has no orphaned heals left.
  constexpr char kPadded[] = R"(# deduce chaos scenario v1
seed 7
grid 4
loss 0
retries 0
reliable 1
repair 0
anti_entropy_period 0
checksum 1
rto_jitter 0.1
storage row
[program]
.decl r/3 input.
.decl s/3 input.
t(K, N1, N2, I1, I2) :- r(K, N1, I1), s(K, N2, I2).
[events]
1163587 5 + r(3, 5, 24).
1239371 6 + s(3, 6, 25).
1338172 0 + s(3, 0, 26).
1538231 0 - s(3, 0, 26).
[faults]
heal 300000 14,15 -> 14,15
cut 400000 14 -> 15
heal 500000 14 -> 15
corrupt 669372 * -> * rate=0.3
[end]
)";
  auto padded = Scenario::FromText(kPadded);
  ASSERT_TRUE(padded.ok()) << padded.status().ToString();
  auto before = RunScenario(*padded);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->report.ok()) << "padded scenario must violate";

  auto shrunk = ShrinkScenario(*padded);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_GT(shrunk->removed, 0);

  // Minimality property: every surviving heal has a cut with identical
  // src/dst lists firing no later than it.
  const auto& events = shrunk->scenario.faults.events;
  for (const FaultEvent& ev : events) {
    if (ev.kind != FaultEvent::Kind::kHealLinks) continue;
    bool partnered = false;
    for (const FaultEvent& cut : events) {
      if (cut.kind == FaultEvent::Kind::kAddLinkFault &&
          cut.time <= ev.time && cut.rule.src == ev.rule.src &&
          cut.rule.dst == ev.rule.dst) {
        partnered = true;
        break;
      }
    }
    EXPECT_TRUE(partnered) << "orphaned heal at t=" << ev.time
                           << " survived shrinking";
  }
  // The heal that never had a cut is gone without costing a re-execution.
  for (const FaultEvent& ev : events) {
    EXPECT_FALSE(ev.kind == FaultEvent::Kind::kHealLinks &&
                 ev.time == 300000)
        << "initially-orphaned heal survived";
  }

  auto after = RunScenario(shrunk->scenario);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->report.ok());
}

}  // namespace
}  // namespace deduce
